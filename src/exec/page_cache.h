// Sharded LRU cache of decoded tree nodes, shared by all concurrent
// queries of the real execution engine.
//
// This is the wall-clock analogue of sim/buffer_pool.h: where the
// simulator's pool only decides whether a virtual-time I/O is charged,
// this cache holds nodes read from a storage::PageStore and already
// converted to the SoA FlatNode layout (so a page is decoded and
// flattened once per residency, not once per visit), and its lock
// sharding is what keeps dozens of query threads from serializing on one
// mutex. Entries are pinned while a query is processing them, so eviction
// can never free a node out from under an OnPagesFetched callback;
// capacity is accounted in disk pages (a supernode record occupies its
// span, like on the media).
//
// Frames remember their origin: a frame inserted by a speculative
// prefetch carries a `speculative` mark until the first *demand* access
// claims it. That transition is the ground truth the adaptive prefetch
// controller feeds on — each speculatively inserted frame resolves to
// exactly one of
//
//   * a prefetch **hit**   — a demand lookup found it resident (the
//     speculation saved a blocking read), or
//   * a prefetch **waste** — it was evicted still unclaimed, or a demand
//     insert raced it (the demand read happened anyway),
//
// giving the shard-local identity
//   speculative_insertions == prefetch_hits + prefetch_wasted
//                             + speculative_resident.
// Speculative traffic stays out of the demand hit/miss statistics
// entirely (prefetch probes pass demand=false), so the PR 4 conservation
// identity `hits + misses == page_requests` keeps holding for demand
// traffic with prefetch enabled.
//
// Keys are PHYSICAL LOCATIONS, not PageIds. The tree reuses PageIds after
// a delete and the durable write path (storage::MutableIndex) moves a
// surviving PageId to fresh bytes on every commit, so the stable identity
// of a cached frame is storage::PageLocationKey(loc) — (disk, offset)
// packed into one uint64_t. Two versions of one PageId never share a key,
// and a key's bytes never change while any query snapshot can reach them,
// which is what makes a hit unconditionally safe under concurrent
// mutation. (Against an immutable store, PageIds passed as keys work
// unchanged — they are just one particular stable 64-bit naming.)
//
// Invalidate() retires keys superseded by a commit; a pinned frame is only
// marked dying (in-flight readers of an older snapshot finish against it)
// and reclaimed on its last Unpin. Dying frames are invisible to every
// lookup path.

#ifndef SQP_EXEC_PAGE_CACHE_H_
#define SQP_EXEC_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/flat_node.h"
#include "obs/metrics.h"
#include "rstar/types.h"

namespace sqp::exec {

// The exec layer stores and serves the core layer's SoA node form.
using FlatNode = core::FlatNode;

struct PageCacheOptions {
  // Total capacity in disk pages, split evenly across shards. Pinned
  // entries may transiently push a shard past its share (they are never
  // evicted), so this is a target, not a hard ceiling.
  size_t capacity_pages = 4096;
  // Power of two recommended. One mutex + LRU list per shard.
  int shards = 16;
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t resident_pages = 0;
  // Speculative-origin accounting (see file comment). At any instant:
  // speculative_insertions == prefetch_hits + prefetch_wasted
  //                           + speculative_resident.
  uint64_t speculative_insertions = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
  size_t speculative_resident = 0;
  // Frames retired by Invalidate()/InvalidateAll() — erased outright, or
  // marked dying and erased on their last Unpin.
  uint64_t invalidations = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

class ShardedPageCache {
 public:
  // With a non-null `metrics`, the cache reports sqp_cache_hits_total,
  // sqp_cache_misses_total, sqp_cache_insertions_total,
  // sqp_cache_evictions_total, sqp_cache_pinned_skips_total (eviction
  // scans that stepped over a pinned frame) and the
  // sqp_cache_resident_pages gauge.
  explicit ShardedPageCache(const PageCacheOptions& options,
                            obs::MetricsRegistry* metrics = nullptr);

  ShardedPageCache(const ShardedPageCache&) = delete;
  ShardedPageCache& operator=(const ShardedPageCache&) = delete;

  // If `key` is resident: pins it, moves it to MRU, and returns the node
  // (stable until the matching Unpin). Returns nullptr on a miss. This is
  // a demand access: a hit on a still-speculative frame claims it (clears
  // the mark, counts a prefetch hit) and, when `prefetched` is non-null,
  // reports the claim there so the engine can attribute the hit to the
  // query's outcome.
  const FlatNode* LookupPinned(uint64_t key, bool* prefetched = nullptr);

  // Like LookupPinned, but does not touch the hit/miss statistics. Used
  // for the second-chance probe inside disk I/O jobs (read coalescing):
  // the miss was already counted when the query thread looked the page up,
  // so counting the probe would double-book the request. Passing a
  // non-null `prefetched` marks the probe as demand traffic (it claims a
  // speculative frame exactly like LookupPinned); prefetch jobs pass
  // nullptr so speculation can never claim its own insertions.
  const FlatNode* ProbePinned(uint64_t key, bool* prefetched = nullptr);

  // True when `key` is resident right now. Takes no pin, no LRU
  // promotion, no statistics — the cancellation predicate of queued
  // speculative I/O jobs (a prefetch whose target already arrived is
  // pointless).
  bool Contains(uint64_t key) const;

  // Makes `key` resident with the given decoded contents and returns it
  // pinned. If another thread inserted `key` first, the existing entry wins
  // (the engine may decode the same missed page twice under contention)
  // and `node` is discarded. `span` is the record's size in disk pages.
  // `speculative` marks a prefetch insertion (see file comment); a
  // *demand* insert that races a still-speculative resident frame counts
  // that frame as prefetch waste — the demand read happened anyway.
  const FlatNode* InsertPinned(uint64_t key, FlatNode node,
                               uint32_t span, bool speculative = false);

  // Releases one pin taken by LookupPinned/InsertPinned.
  void Unpin(uint64_t key);

  // Retires the frames under `keys` (a commit superseded their bytes in
  // the newest snapshot). Unpinned frames are erased outright; pinned
  // frames are marked dying — invisible to all lookups from now on,
  // reclaimed on their last Unpin. Keys not resident are ignored.
  void Invalidate(std::span<const uint64_t> keys);

  // Retires every frame (a checkpoint rewrote the base image, so any
  // (disk, offset) key may now name different bytes). Same pin-safe
  // semantics as Invalidate.
  void InvalidateAll();

  // Aggregated over all shards (each shard counts under its own lock).
  PageCacheStats GetStats() const;

  // Frames currently pinned by at least one in-flight query. Zero when
  // the engine is quiescent — the invariant the cancellation tests assert
  // (a cancelled or deadline-expired query must leave no pin behind).
  size_t PinnedFrames() const;

  size_t capacity_pages() const { return capacity_pages_; }
  int shards() const { return static_cast<int>(shards_.size()); }

  // Lets the engine route the cache's prefetch hit/waste events into its
  // own registry counters (sqp_engine_prefetch_{hits,wasted}_total) —
  // the events are only observable here, but they are engine-level
  // quantities. Either pointer may be null. Call before concurrent use.
  void SetPrefetchInstruments(obs::Counter* hits, obs::Counter* wasted) {
    m_prefetch_hits_ = hits;
    m_prefetch_wasted_ = wasted;
  }

 private:
  struct Frame {
    FlatNode node;
    uint32_t span = 1;
    int pins = 0;
    // Inserted by a prefetch and not yet claimed by any demand access.
    bool speculative = false;
    // Invalidated while pinned; erased on the last Unpin, hidden from
    // every lookup until then.
    bool dying = false;
    std::list<uint64_t>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Frame> frames;
    std::list<uint64_t> lru;  // front = MRU
    size_t resident_pages = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t speculative_insertions = 0;
    uint64_t prefetch_hits = 0;
    uint64_t prefetch_wasted = 0;
    size_t speculative_resident = 0;  // frames still marked speculative
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(uint64_t key) {
    return shards_[static_cast<size_t>(key) % shards_.size()];
  }

  const Shard& ShardFor(uint64_t key) const {
    return shards_[static_cast<size_t>(key) % shards_.size()];
  }

  // A demand access touched `f`: if it is still speculative, claim it as
  // a prefetch hit. Caller holds the shard lock.
  void ClaimIfSpeculativeLocked(Shard& shard, Frame& f, bool* prefetched);

  // Evicts unpinned LRU entries of `shard` until it fits its share.
  // Caller holds shard.mu.
  void EvictLocked(Shard& shard);

  // Retires one resident frame (erase now, or mark dying if pinned).
  // Caller holds shard.mu; `it` must be valid.
  void InvalidateOneLocked(Shard& shard,
                           std::unordered_map<uint64_t, Frame>::iterator it);

  // Removes `it`'s frame from the shard's bookkeeping and map. Caller
  // holds shard.mu; the frame must be unpinned.
  void EraseFrameLocked(Shard& shard,
                        std::unordered_map<uint64_t, Frame>::iterator it);

  size_t capacity_pages_;
  size_t shard_capacity_;
  std::vector<Shard> shards_;

  // Registry instruments; all null when unmetered.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_insertions_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_pinned_skips_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  // Engine-owned, see SetPrefetchInstruments.
  obs::Counter* m_prefetch_hits_ = nullptr;
  obs::Counter* m_prefetch_wasted_ = nullptr;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_PAGE_CACHE_H_
