// Sharded LRU cache of decoded tree nodes, shared by all concurrent
// queries of the real execution engine.
//
// This is the wall-clock analogue of sim/buffer_pool.h: where the
// simulator's pool only decides whether a virtual-time I/O is charged,
// this cache holds nodes read from a storage::PageStore and already
// converted to the SoA FlatNode layout (so a page is decoded and
// flattened once per residency, not once per visit), and its lock
// sharding is what keeps dozens of query threads from serializing on one
// mutex. Entries are pinned while a query is processing them, so eviction
// can never free a node out from under an OnPagesFetched callback;
// capacity is accounted in disk pages (a supernode record occupies its
// span, like on the media).

#ifndef SQP_EXEC_PAGE_CACHE_H_
#define SQP_EXEC_PAGE_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/flat_node.h"
#include "obs/metrics.h"
#include "rstar/types.h"

namespace sqp::exec {

// The exec layer stores and serves the core layer's SoA node form.
using FlatNode = core::FlatNode;

struct PageCacheOptions {
  // Total capacity in disk pages, split evenly across shards. Pinned
  // entries may transiently push a shard past its share (they are never
  // evicted), so this is a target, not a hard ceiling.
  size_t capacity_pages = 4096;
  // Power of two recommended. One mutex + LRU list per shard.
  int shards = 16;
};

struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  size_t resident_pages = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

class ShardedPageCache {
 public:
  // With a non-null `metrics`, the cache reports sqp_cache_hits_total,
  // sqp_cache_misses_total, sqp_cache_insertions_total,
  // sqp_cache_evictions_total, sqp_cache_pinned_skips_total (eviction
  // scans that stepped over a pinned frame) and the
  // sqp_cache_resident_pages gauge.
  explicit ShardedPageCache(const PageCacheOptions& options,
                            obs::MetricsRegistry* metrics = nullptr);

  ShardedPageCache(const ShardedPageCache&) = delete;
  ShardedPageCache& operator=(const ShardedPageCache&) = delete;

  // If `id` is resident: pins it, moves it to MRU, and returns the node
  // (stable until the matching Unpin). Returns nullptr on a miss.
  const FlatNode* LookupPinned(rstar::PageId id);

  // Like LookupPinned, but does not touch the hit/miss statistics. Used
  // for the second-chance probe inside disk I/O jobs (read coalescing):
  // the miss was already counted when the query thread looked the page up,
  // so counting the probe would double-book the request.
  const FlatNode* ProbePinned(rstar::PageId id);

  // Makes `id` resident with the given decoded contents and returns it
  // pinned. If another thread inserted `id` first, the existing entry wins
  // (the engine may decode the same missed page twice under contention)
  // and `node` is discarded. `span` is the record's size in disk pages.
  const FlatNode* InsertPinned(rstar::PageId id, FlatNode node,
                               uint32_t span);

  // Releases one pin taken by LookupPinned/InsertPinned.
  void Unpin(rstar::PageId id);

  // Aggregated over all shards (each shard counts under its own lock).
  PageCacheStats GetStats() const;

  // Frames currently pinned by at least one in-flight query. Zero when
  // the engine is quiescent — the invariant the cancellation tests assert
  // (a cancelled or deadline-expired query must leave no pin behind).
  size_t PinnedFrames() const;

  size_t capacity_pages() const { return capacity_pages_; }
  int shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Frame {
    FlatNode node;
    uint32_t span = 1;
    int pins = 0;
    std::list<rstar::PageId>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<rstar::PageId, Frame> frames;
    std::list<rstar::PageId> lru;  // front = MRU
    size_t resident_pages = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(rstar::PageId id) {
    return shards_[static_cast<size_t>(id) % shards_.size()];
  }

  // Evicts unpinned LRU entries of `shard` until it fits its share.
  // Caller holds shard.mu.
  void EvictLocked(Shard& shard);

  size_t capacity_pages_;
  size_t shard_capacity_;
  std::vector<Shard> shards_;

  // Registry instruments; all null when unmetered.
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_insertions_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_pinned_skips_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_PAGE_CACHE_H_
