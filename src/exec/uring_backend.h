// io_uring-native completion-driven I/O backend (the "uring" IoBackend).
//
// DiskIoPool parks one blocking thread per disk — faithful to 1998
// spindles, wasteful on modern kernels where a single core can keep
// dozens of reads in flight. This backend replaces the D worker threads
// with ONE completion reactor driving one io_uring shared by all disks:
//
//   * demand read batches (SubmitBatchRead) are merged into offset-
//     contiguous runs (storage::PlanReadRuns — the same plan
//     FilePageStore executes) and submitted as vectored READV SQEs
//     against the store's registered file descriptors, up to a deep
//     per-disk in-flight window;
//   * the reactor reaps CQEs and invokes the batch's completion callback
//     directly — the waiting traversal step is resumed from the
//     completion, no thread ever blocks in pread;
//   * the two-class contract is preserved: demand runs own the ring,
//     speculative closure jobs (prefetch) run on per-disk executor
//     threads created lazily and only while their disk has no demand
//     work queued or in flight, with the cancel predicate evaluated at
//     the moment the job would start (cancelled entries are never
//     submitted, or reaped and dropped at shutdown).
//
// Fault/latency decorators stay BELOW the backend: a store that cannot
// hand out raw file descriptors (PageStore::RawFd < 0 — MemPageStore,
// ThrottledPageStore, FaultInjectingPageStore, the mutable index's
// switchable facade) routes its batches through store->ReadPages on the
// per-disk executors instead of the ring — one job per merged run, up
// to the same per-disk window the ring sustains, so a disk overlaps its
// runs' charged service times exactly as per-run SQEs overlap in fd
// mode, and injected faults surface exactly as they do under the
// threads backend. Answers are bit-identical either way — the engine
// owns delivery order.
//
// Metrics (with a registry): the per-disk sqp_io_* family of the threads
// backend where meaningful, plus sqp_io_inflight{disk} (runs in flight
// on the ring), sqp_uring_submit_batch_size (SQEs per io_uring_enter)
// and sqp_uring_completion_seconds (submit -> reap latency). Demand-run
// conservation: reads_submitted == reads_completed + reads_cancelled
// once drained, alongside the speculative identity of IoBackend.
//
// Build support is probed twice: at compile time (SQP_HAVE_IO_URING,
// from linux/io_uring.h) and at runtime (ProbeIoUring — an
// io_uring_setup syscall; honors SQP_FORCE_NO_URING=1 for tests/CI).
// Create() fails with a typed Status when either probe fails; callers
// (the engine) fall back to DiskIoPool and record the reason.

#ifndef SQP_EXEC_URING_BACKEND_H_
#define SQP_EXEC_URING_BACKEND_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "exec/io_backend.h"
#include "obs/metrics.h"
#include "storage/page_store.h"

namespace sqp::exec {

// Outcome of the runtime io_uring probe. `detail` is human-readable
// either way (kernel release + ring features, or the failure reason) —
// it lands in bench metadata and startup banners.
struct UringProbe {
  bool available = false;
  std::string detail;
};

// Cheap (one setup/close syscall pair); callers may cache the result.
UringProbe ProbeIoUring();

struct UringBackendOptions {
  // Submission queue depth requested from the kernel (rounded up to a
  // power of two). Shared by every disk.
  unsigned ring_entries = 256;
  // Deep per-disk in-flight window: how many merged runs of one disk may
  // sit in the ring at once. Clamped so all disks together fit the ring.
  int max_inflight_per_disk = 16;
  // Queued-but-unsubmitted demand jobs per disk before SubmitBatchRead /
  // Submit block (backpressure), as DiskIoPoolOptions::max_queue_depth.
  size_t max_queue_depth = 1024;
  // Per-disk bound on queued speculative jobs; SubmitSpeculative never
  // blocks, it rejects.
  size_t max_speculative_depth = 64;
};

class UringIoBackend final : public IoBackend {
 public:
  // Fails (kUnavailable) when io_uring is compiled out, the runtime
  // probe fails, or ring setup is refused. `store` must outlive the
  // backend; when it supplies raw fds for every disk they are registered
  // with the ring, otherwise batches run through store->ReadPages on the
  // executors (see file comment). `metrics` may be null (unmetered).
  static common::Result<std::unique_ptr<UringIoBackend>> Create(
      const storage::PageStore* store,
      obs::MetricsRegistry* metrics = nullptr,
      const UringBackendOptions& options = {});

  // Drains all queued demand work (batches and closures), cancels queued
  // speculation, then joins the reactor and executors.
  ~UringIoBackend() override;

  UringIoBackend(const UringIoBackend&) = delete;
  UringIoBackend& operator=(const UringIoBackend&) = delete;

  const char* name() const override { return "uring"; }
  int num_disks() const override;

  void Submit(int disk, std::function<void()> job) override;
  bool TrySubmit(int disk, std::function<void()> job) override;
  bool SubmitSpeculative(int disk, std::function<void()> job,
                         std::function<bool()> cancel = nullptr) override;

  bool completion_driven() const override { return true; }
  void SubmitBatchRead(int disk, std::vector<storage::ReadRequest> requests,
                       std::function<void(common::Status)> done) override;

  uint64_t jobs_completed() const override;
  uint64_t backpressure_waits() const override;
  uint64_t queue_rejections() const override;
  uint64_t speculative_issued() const override;
  uint64_t speculative_completed() const override;
  uint64_t speculative_cancelled() const override;
  size_t demand_queue_depth(int disk) const override;
  bool demand_busy(int disk) const override;
  bool OnWorkerThread() const override;

  // True when demand batches really ride the ring (the store handed out
  // raw fds for every disk); false when they run via ReadPages on the
  // executors (decorated or in-memory stores).
  bool using_raw_fds() const;

  // Demand-run conservation over the ring (and the executor fallback,
  // where one batch counts as one run): once drained,
  // reads_submitted == reads_completed + reads_cancelled.
  uint64_t reads_submitted() const;
  uint64_t reads_completed() const;
  uint64_t reads_cancelled() const;

 private:
  struct Impl;
  explicit UringIoBackend(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_URING_BACKEND_H_
