#include "exec/page_cache.h"

#include <utility>

#include "common/check.h"

namespace sqp::exec {

ShardedPageCache::ShardedPageCache(const PageCacheOptions& options,
                                   obs::MetricsRegistry* metrics)
    : capacity_pages_(options.capacity_pages),
      shard_capacity_(options.capacity_pages /
                      static_cast<size_t>(options.shards > 0 ? options.shards
                                                             : 1)),
      shards_(static_cast<size_t>(options.shards > 0 ? options.shards : 1)) {
  if (shard_capacity_ == 0 && capacity_pages_ > 0) shard_capacity_ = 1;
  if (metrics != nullptr) {
    m_hits_ = metrics->GetCounter("sqp_cache_hits_total");
    m_misses_ = metrics->GetCounter("sqp_cache_misses_total");
    m_insertions_ = metrics->GetCounter("sqp_cache_insertions_total");
    m_evictions_ = metrics->GetCounter("sqp_cache_evictions_total");
    m_pinned_skips_ = metrics->GetCounter("sqp_cache_pinned_skips_total");
    m_resident_ = metrics->GetGauge("sqp_cache_resident_pages");
  }
}

void ShardedPageCache::ClaimIfSpeculativeLocked(Shard& shard, Frame& f,
                                                bool* prefetched) {
  if (!f.speculative) return;
  f.speculative = false;
  shard.speculative_resident -= 1;
  ++shard.prefetch_hits;
  if (m_prefetch_hits_ != nullptr) m_prefetch_hits_->Add(1);
  if (prefetched != nullptr) *prefetched = true;
}

const FlatNode* ShardedPageCache::LookupPinned(uint64_t key,
                                               bool* prefetched) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it == shard.frames.end() || it->second.dying) {
    ++shard.misses;
    if (m_misses_ != nullptr) m_misses_->Add(1);
    return nullptr;
  }
  ++shard.hits;
  if (m_hits_ != nullptr) m_hits_->Add(1);
  Frame& f = it->second;
  ClaimIfSpeculativeLocked(shard, f, prefetched);
  ++f.pins;
  shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
  return &f.node;
}

const FlatNode* ShardedPageCache::ProbePinned(uint64_t key,
                                              bool* prefetched) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it == shard.frames.end() || it->second.dying) return nullptr;
  Frame& f = it->second;
  // Only demand probes (prefetched != nullptr) may claim a speculative
  // frame; a prefetch job probing its own target must not count a hit.
  if (prefetched != nullptr) ClaimIfSpeculativeLocked(shard, f, prefetched);
  ++f.pins;
  shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
  return &f.node;
}

bool ShardedPageCache::Contains(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  return it != shard.frames.end() && !it->second.dying;
}

const FlatNode* ShardedPageCache::InsertPinned(uint64_t key,
                                               FlatNode node,
                                               uint32_t span,
                                               bool speculative) {
  SQP_CHECK(span >= 1);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  if (it != shard.frames.end() && !it->second.dying) {
    // Raced with another inserter; keep the resident copy.
    Frame& f = it->second;
    if (!speculative && f.speculative) {
      // A demand read completed even though the page was (speculatively)
      // resident: that speculation saved nothing. Resolve it as waste.
      f.speculative = false;
      shard.speculative_resident -= 1;
      ++shard.prefetch_wasted;
      if (m_prefetch_wasted_ != nullptr) m_prefetch_wasted_->Add(1);
    }
    ++f.pins;
    shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
    return &f.node;
  }
  if (it != shard.frames.end()) {
    // A dying frame still pinned by an old-snapshot reader. Location keys
    // are never reissued before every invalidation of them has drained,
    // so the incoming bytes are identical to the dying frame's; serve the
    // resident copy rather than aliasing the key twice.
    Frame& f = it->second;
    ++f.pins;
    return &f.node;
  }
  shard.lru.push_front(key);
  Frame& f = shard.frames[key];
  f.node = std::move(node);
  f.span = span;
  f.pins = 1;
  f.speculative = speculative;
  f.lru_pos = shard.lru.begin();
  shard.resident_pages += span;
  ++shard.insertions;
  if (speculative) {
    ++shard.speculative_insertions;
    shard.speculative_resident += 1;
  }
  if (m_insertions_ != nullptr) m_insertions_->Add(1);
  if (m_resident_ != nullptr) m_resident_->Add(span);
  EvictLocked(shard);
  return &f.node;
}

void ShardedPageCache::Unpin(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(key);
  SQP_CHECK(it != shard.frames.end());
  SQP_CHECK(it->second.pins > 0);
  --it->second.pins;
  if (it->second.pins == 0 && it->second.dying) {
    EraseFrameLocked(shard, it);
    return;
  }
  if (it->second.pins == 0 && shard.resident_pages > shard_capacity_) {
    EvictLocked(shard);
  }
}

void ShardedPageCache::EraseFrameLocked(
    Shard& shard, std::unordered_map<uint64_t, Frame>::iterator it) {
  SQP_DCHECK(it->second.pins == 0);
  shard.resident_pages -= it->second.span;
  if (it->second.speculative) {
    // Retired before any demand access claimed it: the prefetch read
    // pages nobody wanted in time.
    shard.speculative_resident -= 1;
    ++shard.prefetch_wasted;
    if (m_prefetch_wasted_ != nullptr) m_prefetch_wasted_->Add(1);
  }
  if (m_resident_ != nullptr) {
    m_resident_->Add(-static_cast<int64_t>(it->second.span));
  }
  shard.lru.erase(it->second.lru_pos);
  shard.frames.erase(it);
}

void ShardedPageCache::InvalidateOneLocked(
    Shard& shard, std::unordered_map<uint64_t, Frame>::iterator it) {
  if (it->second.dying) return;  // already retired
  ++shard.invalidations;
  if (it->second.pins > 0) {
    it->second.dying = true;  // reclaimed on the last Unpin
    return;
  }
  EraseFrameLocked(shard, it);
}

void ShardedPageCache::Invalidate(std::span<const uint64_t> keys) {
  for (uint64_t key : keys) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(key);
    if (it == shard.frames.end()) continue;
    InvalidateOneLocked(shard, it);
  }
}

void ShardedPageCache::InvalidateAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      auto next = std::next(it);
      InvalidateOneLocked(shard, it);
      it = next;
    }
  }
}

void ShardedPageCache::EvictLocked(Shard& shard) {
  if (shard.resident_pages <= shard_capacity_) return;
  // Walk from the LRU end, skipping pinned frames. The newly inserted
  // frame sits at the MRU end and is pinned, so it is never its own
  // victim.
  auto pos = shard.lru.end();
  while (shard.resident_pages > shard_capacity_ &&
         pos != shard.lru.begin()) {
    --pos;
    auto it = shard.frames.find(*pos);
    SQP_DCHECK(it != shard.frames.end());
    if (it->second.pins > 0) {
      if (m_pinned_skips_ != nullptr) m_pinned_skips_->Add(1);
      continue;
    }
    shard.resident_pages -= it->second.span;
    ++shard.evictions;
    if (it->second.speculative) {
      // Evicted before any demand access claimed it: the prefetch read
      // pages nobody wanted in time.
      shard.speculative_resident -= 1;
      ++shard.prefetch_wasted;
      if (m_prefetch_wasted_ != nullptr) m_prefetch_wasted_->Add(1);
    }
    if (m_evictions_ != nullptr) m_evictions_->Add(1);
    if (m_resident_ != nullptr) m_resident_->Add(-static_cast<int64_t>(it->second.span));
    pos = shard.lru.erase(pos);
    shard.frames.erase(it);
  }
}

PageCacheStats ShardedPageCache::GetStats() const {
  PageCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.resident_pages += shard.resident_pages;
    stats.speculative_insertions += shard.speculative_insertions;
    stats.prefetch_hits += shard.prefetch_hits;
    stats.prefetch_wasted += shard.prefetch_wasted;
    stats.speculative_resident += shard.speculative_resident;
    stats.invalidations += shard.invalidations;
  }
  return stats;
}

size_t ShardedPageCache::PinnedFrames() const {
  size_t pinned = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, frame] : shard.frames) {
      if (frame.pins > 0) ++pinned;
    }
  }
  return pinned;
}

}  // namespace sqp::exec
