#include "exec/page_cache.h"

#include <utility>

#include "common/check.h"

namespace sqp::exec {

ShardedPageCache::ShardedPageCache(const PageCacheOptions& options)
    : capacity_pages_(options.capacity_pages),
      shard_capacity_(options.capacity_pages /
                      static_cast<size_t>(options.shards > 0 ? options.shards
                                                             : 1)),
      shards_(static_cast<size_t>(options.shards > 0 ? options.shards : 1)) {
  if (shard_capacity_ == 0 && capacity_pages_ > 0) shard_capacity_ = 1;
}

const rstar::Node* ShardedPageCache::LookupPinned(rstar::PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  Frame& f = it->second;
  ++f.pins;
  shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
  return &f.node;
}

const rstar::Node* ShardedPageCache::InsertPinned(rstar::PageId id,
                                                  rstar::Node node,
                                                  uint32_t span) {
  SQP_CHECK(span >= 1);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    // Raced with another inserter; keep the resident copy.
    Frame& f = it->second;
    ++f.pins;
    shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
    return &f.node;
  }
  shard.lru.push_front(id);
  Frame& f = shard.frames[id];
  f.node = std::move(node);
  f.span = span;
  f.pins = 1;
  f.lru_pos = shard.lru.begin();
  shard.resident_pages += span;
  ++shard.insertions;
  EvictLocked(shard);
  return &f.node;
}

void ShardedPageCache::Unpin(rstar::PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  SQP_CHECK(it != shard.frames.end());
  SQP_CHECK(it->second.pins > 0);
  --it->second.pins;
  if (it->second.pins == 0 && shard.resident_pages > shard_capacity_) {
    EvictLocked(shard);
  }
}

void ShardedPageCache::EvictLocked(Shard& shard) {
  if (shard.resident_pages <= shard_capacity_) return;
  // Walk from the LRU end, skipping pinned frames. The newly inserted
  // frame sits at the MRU end and is pinned, so it is never its own
  // victim.
  auto pos = shard.lru.end();
  while (shard.resident_pages > shard_capacity_ &&
         pos != shard.lru.begin()) {
    --pos;
    auto it = shard.frames.find(*pos);
    SQP_DCHECK(it != shard.frames.end());
    if (it->second.pins > 0) continue;
    shard.resident_pages -= it->second.span;
    ++shard.evictions;
    pos = shard.lru.erase(pos);
    shard.frames.erase(it);
  }
}

PageCacheStats ShardedPageCache::GetStats() const {
  PageCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.resident_pages += shard.resident_pages;
  }
  return stats;
}

}  // namespace sqp::exec
