#include "exec/page_cache.h"

#include <utility>

#include "common/check.h"

namespace sqp::exec {

ShardedPageCache::ShardedPageCache(const PageCacheOptions& options,
                                   obs::MetricsRegistry* metrics)
    : capacity_pages_(options.capacity_pages),
      shard_capacity_(options.capacity_pages /
                      static_cast<size_t>(options.shards > 0 ? options.shards
                                                             : 1)),
      shards_(static_cast<size_t>(options.shards > 0 ? options.shards : 1)) {
  if (shard_capacity_ == 0 && capacity_pages_ > 0) shard_capacity_ = 1;
  if (metrics != nullptr) {
    m_hits_ = metrics->GetCounter("sqp_cache_hits_total");
    m_misses_ = metrics->GetCounter("sqp_cache_misses_total");
    m_insertions_ = metrics->GetCounter("sqp_cache_insertions_total");
    m_evictions_ = metrics->GetCounter("sqp_cache_evictions_total");
    m_pinned_skips_ = metrics->GetCounter("sqp_cache_pinned_skips_total");
    m_resident_ = metrics->GetGauge("sqp_cache_resident_pages");
  }
}

void ShardedPageCache::ClaimIfSpeculativeLocked(Shard& shard, Frame& f,
                                                bool* prefetched) {
  if (!f.speculative) return;
  f.speculative = false;
  shard.speculative_resident -= 1;
  ++shard.prefetch_hits;
  if (m_prefetch_hits_ != nullptr) m_prefetch_hits_->Add(1);
  if (prefetched != nullptr) *prefetched = true;
}

const FlatNode* ShardedPageCache::LookupPinned(rstar::PageId id,
                                               bool* prefetched) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    ++shard.misses;
    if (m_misses_ != nullptr) m_misses_->Add(1);
    return nullptr;
  }
  ++shard.hits;
  if (m_hits_ != nullptr) m_hits_->Add(1);
  Frame& f = it->second;
  ClaimIfSpeculativeLocked(shard, f, prefetched);
  ++f.pins;
  shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
  return &f.node;
}

const FlatNode* ShardedPageCache::ProbePinned(rstar::PageId id,
                                              bool* prefetched) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return nullptr;
  Frame& f = it->second;
  // Only demand probes (prefetched != nullptr) may claim a speculative
  // frame; a prefetch job probing its own target must not count a hit.
  if (prefetched != nullptr) ClaimIfSpeculativeLocked(shard, f, prefetched);
  ++f.pins;
  shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
  return &f.node;
}

bool ShardedPageCache::Contains(rstar::PageId id) const {
  const Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.frames.find(id) != shard.frames.end();
}

const FlatNode* ShardedPageCache::InsertPinned(rstar::PageId id,
                                               FlatNode node,
                                               uint32_t span,
                                               bool speculative) {
  SQP_CHECK(span >= 1);
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    // Raced with another inserter; keep the resident copy.
    Frame& f = it->second;
    if (!speculative && f.speculative) {
      // A demand read completed even though the page was (speculatively)
      // resident: that speculation saved nothing. Resolve it as waste.
      f.speculative = false;
      shard.speculative_resident -= 1;
      ++shard.prefetch_wasted;
      if (m_prefetch_wasted_ != nullptr) m_prefetch_wasted_->Add(1);
    }
    ++f.pins;
    shard.lru.splice(shard.lru.begin(), shard.lru, f.lru_pos);
    return &f.node;
  }
  shard.lru.push_front(id);
  Frame& f = shard.frames[id];
  f.node = std::move(node);
  f.span = span;
  f.pins = 1;
  f.speculative = speculative;
  f.lru_pos = shard.lru.begin();
  shard.resident_pages += span;
  ++shard.insertions;
  if (speculative) {
    ++shard.speculative_insertions;
    shard.speculative_resident += 1;
  }
  if (m_insertions_ != nullptr) m_insertions_->Add(1);
  if (m_resident_ != nullptr) m_resident_->Add(span);
  EvictLocked(shard);
  return &f.node;
}

void ShardedPageCache::Unpin(rstar::PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  SQP_CHECK(it != shard.frames.end());
  SQP_CHECK(it->second.pins > 0);
  --it->second.pins;
  if (it->second.pins == 0 && shard.resident_pages > shard_capacity_) {
    EvictLocked(shard);
  }
}

void ShardedPageCache::EvictLocked(Shard& shard) {
  if (shard.resident_pages <= shard_capacity_) return;
  // Walk from the LRU end, skipping pinned frames. The newly inserted
  // frame sits at the MRU end and is pinned, so it is never its own
  // victim.
  auto pos = shard.lru.end();
  while (shard.resident_pages > shard_capacity_ &&
         pos != shard.lru.begin()) {
    --pos;
    auto it = shard.frames.find(*pos);
    SQP_DCHECK(it != shard.frames.end());
    if (it->second.pins > 0) {
      if (m_pinned_skips_ != nullptr) m_pinned_skips_->Add(1);
      continue;
    }
    shard.resident_pages -= it->second.span;
    ++shard.evictions;
    if (it->second.speculative) {
      // Evicted before any demand access claimed it: the prefetch read
      // pages nobody wanted in time.
      shard.speculative_resident -= 1;
      ++shard.prefetch_wasted;
      if (m_prefetch_wasted_ != nullptr) m_prefetch_wasted_->Add(1);
    }
    if (m_evictions_ != nullptr) m_evictions_->Add(1);
    if (m_resident_ != nullptr) m_resident_->Add(-static_cast<int64_t>(it->second.span));
    pos = shard.lru.erase(pos);
    shard.frames.erase(it);
  }
}

PageCacheStats ShardedPageCache::GetStats() const {
  PageCacheStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.insertions += shard.insertions;
    stats.evictions += shard.evictions;
    stats.resident_pages += shard.resident_pages;
    stats.speculative_insertions += shard.speculative_insertions;
    stats.prefetch_hits += shard.prefetch_hits;
    stats.prefetch_wasted += shard.prefetch_wasted;
    stats.speculative_resident += shard.speculative_resident;
  }
  return stats;
}

size_t ShardedPageCache::PinnedFrames() const {
  size_t pinned = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [id, frame] : shard.frames) {
      if (frame.pins > 0) ++pinned;
    }
  }
  return pinned;
}

}  // namespace sqp::exec
