// Real concurrent query engine over a persisted index.
//
// Where sim::QueryEngine *models* the paper's queueing network in virtual
// time, this engine *is* that network in wall-clock time, built from three
// pieces:
//
//   * DiskIoPool — one I/O worker + FIFO queue per disk, mirroring the
//     declustering assignment: an activation batch of b pages on b disks
//     issues b concurrent reads (the paper's intra-query parallelism).
//   * ShardedPageCache — pin/unpin LRU cache of decoded nodes shared by
//     all in-flight queries (the DBMS buffer manager of the setting).
//   * StoredIndexReader — PageId -> (disk, offset) resolution with
//     per-disk batching and adjacent-pread merging underneath.
//
// Queries run the *unchanged* resumable state machines of src/core/
// (BBSS/FPSS/CRSS/WOPTSS): the engine fetches each step's batch — cache
// first, then per-disk jobs for the misses — delivers the pages in request
// order, and therefore returns bit-identical k-NN results to the
// sequential executor. RunBatch admits many queries concurrently on a
// fixed pool of query threads (the multiuser scenario's in-flight limit).

#ifndef SQP_EXEC_PARALLEL_ENGINE_H_
#define SQP_EXEC_PARALLEL_ENGINE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/algorithms.h"
#include "core/knn_result.h"
#include "exec/coalescer.h"
#include "exec/io_pool.h"
#include "exec/page_cache.h"
#include "exec/prefetch_controller.h"
#include "exec/stored_index.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/parallel_tree.h"
#include "storage/index_io.h"
#include "storage/mutable_index.h"
#include "storage/page_store.h"

namespace sqp::exec {

// Which IoBackend carries the engine's disk work (docs/EXECUTION.md,
// "I/O backends"). kUring is a request, not a guarantee: when the runtime
// probe or ring setup fails the engine silently falls back to kThreads
// and records why (io_backend_fallback_reason()). Results are
// bit-identical across backends.
enum class IoBackendKind {
  kThreads,  // DiskIoPool: one blocking worker thread per disk
  kUring,    // UringIoBackend: one completion reactor, io_uring submission
};

struct EngineOptions {
  // Concurrent in-flight queries (query worker threads of RunBatch).
  int query_threads = 8;
  // Page cache capacity in disk pages; 0 disables caching (every fetch
  // reads the store).
  size_t cache_pages = 4096;
  int cache_shards = 16;
  // Bypass the per-disk workers: misses are read one page at a time on
  // the calling thread, so nothing overlaps. This is the single-disk-
  // at-a-time system the paper's speedup figures compare against;
  // benchmarks use it as the baseline. Results are identical either way.
  bool serial_io = false;
  // Per-disk I/O queue bound (see DiskIoPoolOptions::max_queue_depth).
  size_t io_queue_depth = 1024;
  // Backend the per-disk demand/speculative work runs on. Ignored in
  // serial_io mode (no backend work there). See IoBackendKind.
  IoBackendKind io_backend = IoBackendKind::kThreads;
  // Speculative prefetch: when a step's activation batch leaves disks
  // idle and the algorithm supplied prefetch hints (CRSS hints its top
  // deferred candidate-run pages), up to this many hinted pages per step
  // are offered to the speculative class of the idle disks' queues
  // (DiskIoPool::SubmitSpeculative — demand work always runs first, and
  // a queued speculation is cancelled if its page arrives some other
  // way). 0 disables prefetch — the default. Speculative reads are
  // separately accounted (sqp_engine_prefetch_pages_read_total), so the
  // docs/OBSERVABILITY.md conservation identities keep holding for
  // demand traffic either way.
  int prefetch_budget = 0;
  // Feedback-controlled prefetch: ignore the static budget above and let
  // an AdaptivePrefetchController (prefetch_controller.h) recompute the
  // per-step budget from the windowed prefetch hit rate, cache pressure,
  // and per-disk demand queue depth — speculation scales up only while
  // the accounting shows it paying for itself, capped at the disk count.
  // This is the policy `--prefetch=adaptive` selects and the bench's
  // prefetch series runs. No effect in serial_io mode (no prefetch
  // there either way).
  bool prefetch_adaptive = false;
  // How hard the stored-index reader fights transient media faults
  // before a record's failure surfaces as the query's status.
  RetryPolicy retry;
  // Observability (docs/OBSERVABILITY.md). With enable_metrics the engine
  // and every component under it (cache, I/O pool, reader) report into a
  // MetricsRegistry — the caller's via `metrics`, or one the engine owns
  // when `metrics` is null. false runs the whole stack unmetered (the
  // benchmark's overhead baseline).
  bool enable_metrics = true;
  obs::MetricsRegistry* metrics = nullptr;
  // Span ring-buffer capacity of the per-query trace recorder; 0 disables
  // tracing entirely.
  size_t trace_capacity = 4096;
};

// Shared cancellation token for one in-flight query. The owner (a server
// session, a client connection handler) sets `cancel`; the engine checks
// it at every step boundary — where no page pins are held — so a
// cancelled query never leaks a pinned cache frame. Must outlive the
// query it is attached to.
struct QueryControl {
  std::atomic<bool> cancel{false};
};

// One k-NN query admitted to the engine.
struct EngineQuery {
  geometry::Point point;
  size_t k = 10;
  core::AlgorithmKind algo = core::AlgorithmKind::kCrss;
  // Wall-clock budget in seconds, measured from the moment the engine
  // starts the query; 0 = none. A query that exceeds it stops at the next
  // step boundary with StatusCode::kDeadlineExceeded (and the outcome's
  // deadline_exceeded flag), keeping partial work out of the result.
  double deadline_s = 0.0;
  // Optional external cancellation token (see QueryControl); not owned.
  const QueryControl* control = nullptr;
};

// Options for RunTraversal — the generic form RunQuery is built on.
struct TraversalOptions {
  // Name recorded on the traversal's trace spans; must outlive the call
  // (string literals do).
  const char* algo_name = "traversal";
  // As EngineQuery::deadline_s / EngineQuery::control.
  double deadline_s = 0.0;
  const QueryControl* control = nullptr;
  // Called on the query thread after each completed step, with that
  // step's page pins already released. Streaming callers drain the
  // traversal's stable results here (see core::PagedDistanceBrowser).
  std::function<void()> on_step;
};

// Outcome of one query: the value (neighbors) or the error (status), plus
// per-query execution and fault counters. A failing page degrades exactly
// the queries that touch it — `status` carries the descriptive error, the
// engine and its worker pools stay fully serviceable.
struct QueryOutcome {
  common::Status status;
  // Ascending distance, ties by object id — same order as
  // KnnResultSet::Sorted() under the sequential executor.
  std::vector<core::Neighbor> neighbors;
  size_t pages_fetched = 0;
  size_t steps = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  // Fault accounting for this query's store reads: failed read/decode
  // attempts observed, and attempts re-issued by the retry policy. A
  // query with ok() status and nonzero counters survived transient
  // faults with a bit-identical result.
  uint64_t io_faults = 0;
  uint64_t io_retries = 0;
  // Backend reads this query avoided by sharing another query's work:
  // in-flight read joins (serial_io) plus pages found already cached by
  // the second-chance probe inside its disk jobs (pooled mode).
  uint64_t coalesced_reads = 0;
  // Speculative pages this query's steps pushed to idle disks.
  uint64_t prefetch_issued = 0;
  // Demand page requests of this query served from a frame some query's
  // prefetch read ahead of time (each saved one blocking media read).
  uint64_t prefetch_hits = 0;
  // Of the speculative jobs *this query* issued: how many were resolved
  // as pointless by the time the query finished — cancelled in queue or
  // skipped because the page had meanwhile arrived some other way.
  // Best-effort attribution (a job still in flight at query end reports
  // to the global sqp_engine_prefetch_wasted_total counter only).
  uint64_t prefetch_wasted = 0;
  // True when the query stopped because its deadline passed (status then
  // carries StatusCode::kDeadlineExceeded). Lets callers separate "the
  // system was too slow" from data errors without string matching.
  bool deadline_exceeded = false;
  double latency_s = 0.0;
  // Engine-unique id tying this outcome to its trace spans.
  uint64_t query_id = 0;
};

// Historical name, kept for call sites that predate the fault counters.
using QueryAnswer = QueryOutcome;

class ParallelQueryEngine {
 public:
  // `index` supplies the tree the algorithms are constructed against
  // (config, root, and WOPTSS's oracle); all page *contents* served to the
  // algorithms are read from `store` and checksum-verified. Both must
  // outlive the engine; the store must hold the saved image of `index`.
  static common::Result<std::unique_ptr<ParallelQueryEngine>> Create(
      const parallel::ParallelRStarTree& index,
      const storage::PageStore* store, const EngineOptions& options);

  // Serves queries from a durably mutable index while Insert/Delete/
  // Checkpoint proceed concurrently. Every traversal runs against an
  // immutable layout snapshot captured under the index's reader lock
  // (with the algorithm constructed and Begin() run under that same hold,
  // since construction walks the live tree), inside an epoch the index's
  // checkpointer drains before reclaiming bytes — so a query never
  // observes a torn, reclaimed or half-committed node. Checkpoints
  // (explicit or background-compaction folds) flip the index to a fresh
  // generation mid-serve: the engine reads through the index's switchable
  // store facade, which is retargeted under the same drain, and the flip
  // arrives as a full-invalidate commit callback. The engine registers
  // the index's commit callback to retire superseded cache frames;
  // `index` must outlive the engine, and only one engine may be attached
  // to it at a time. Speculative prefetch is forced off in this mode
  // (hints name pages of a snapshot, not of the live page map).
  static common::Result<std::unique_ptr<ParallelQueryEngine>> CreateMutable(
      storage::MutableIndex* index, const EngineOptions& options);

  ~ParallelQueryEngine();

  ParallelQueryEngine(const ParallelQueryEngine&) = delete;
  ParallelQueryEngine& operator=(const ParallelQueryEngine&) = delete;

  // Runs one query to completion on the calling thread (I/O still fans
  // out across the per-disk workers). Thread-safe. A page fault that
  // survives the retry policy fails only this query's outcome.
  QueryOutcome RunQuery(const EngineQuery& query);

  // Runs an arbitrary batch traversal (a streaming browser, a range
  // query) through the same fetch/cache/retry/trace stack as RunQuery,
  // honouring the options' deadline and cancellation token at every step
  // boundary. The traversal object carries the results; the outcome's
  // neighbors stay empty. Thread-safe in the same sense as RunQuery.
  QueryOutcome RunTraversal(core::BatchTraversal* traversal,
                            const TraversalOptions& options);

  // Runs all queries with at most `options.query_threads` in flight,
  // returning outcomes in input order. Failed queries occupy their slot
  // with a non-OK status; the batch always completes.
  std::vector<QueryOutcome> RunBatch(const std::vector<EngineQuery>& queries);

  const ShardedPageCache& cache() const { return *cache_; }
  const StoredIndexReader& reader() const { return *reader_; }
  int num_disks() const { return reader_->num_disks(); }

  // The backend actually serving I/O ("threads" or "uring") — may differ
  // from the requested EngineOptions::io_backend after a fallback.
  const char* io_backend_name() const { return io_pool_->name(); }
  // Why a kUring request ended up on threads (probe failure, serial_io,
  // ...); empty when the requested backend is the active one.
  const std::string& io_backend_fallback_reason() const {
    return io_fallback_reason_;
  }
  // The live backend, for tests asserting its conservation identities.
  const IoBackend& io_backend() const { return *io_pool_; }

  // The registry this engine (and its cache/pool/reader) reports into —
  // the external one from EngineOptions::metrics or the engine-owned one.
  // Null when the engine was created with enable_metrics = false.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  // Span recorder of per-query traces; null when trace_capacity was 0.
  const obs::TraceRecorder* trace() const { return trace_.get(); }

 private:
  ParallelQueryEngine(const parallel::ParallelRStarTree& index,
                      std::unique_ptr<StoredIndexReader> reader,
                      const EngineOptions& options);

  // Per-traversal prefetch attribution, shared with the fire-and-forget
  // speculative jobs (which may outlive the traversal's stack frame).
  struct PrefetchTally {
    std::atomic<uint64_t> wasted{0};
  };

  // Fetches `ids` — cache first, then one DiskIoPool job per missed disk —
  // and stores pinned nodes into `slots` (aligned with `ids`), with each
  // slot's cache key in `keys` (pass these to Unpin). PageIds resolve
  // through `layout`, the traversal's snapshot — the reader's own layout
  // against an immutable store, a MutableIndex snapshot otherwise. On
  // error every successfully pinned slot is unpinned and cleared. `span`,
  // when non-null, receives this step's cache/io breakdown (trace
  // recording). `prefetch_hints` (may be empty) are speculative pages the
  // algorithm would likely activate next; with a prefetch budget, hints
  // are pushed to disks left idle by this step's demand misses. `tally`
  // (null when prefetch is off) collects this traversal's speculative-
  // waste events.
  common::Status FetchBatch(const std::vector<rstar::PageId>& ids,
                            const std::vector<rstar::PageId>& prefetch_hints,
                            const storage::IndexLayout& layout,
                            std::vector<const FlatNode*>* slots,
                            std::vector<uint64_t>* keys,
                            QueryOutcome* outcome, obs::TraceSpan* span,
                            const std::shared_ptr<PrefetchTally>& tally);

  // Offers up to the step's prefetch budget (static, or the adaptive
  // controller's current value) of hinted pages to the speculative class
  // of disks that are neither in `busy_disks` nor holding queued demand
  // work, as fire-and-forget cancellable jobs.
  void IssuePrefetch(const std::vector<rstar::PageId>& hints,
                     const std::map<int, std::vector<size_t>>& busy_disks,
                     QueryOutcome* outcome,
                     const std::shared_ptr<PrefetchTally>& tally);

  // One speculative effort resolved without saving anything: counts into
  // the registry, the adaptive controller's signal, and (via `tally`)
  // the issuing query's outcome.
  void NotePrefetchWasted(const std::shared_ptr<PrefetchTally>& tally);

  // `factory` constructs (or just returns) the traversal and is invoked
  // exactly once — under the mutable index's reader lock when attached to
  // one, so that algorithm construction and Begin() observe a consistent
  // tree state matching the captured layout snapshot.
  QueryOutcome RunTraversalImpl(
      const std::function<core::BatchTraversal*()>& factory,
      const TraversalOptions& options, uint64_t query_id);

  // Books the finished traversal into the engine counters and records its
  // whole-query trace span (shared RunQuery/RunTraversal epilogue; pairs
  // with the inflight gauge increment made before RunTraversalImpl).
  void FinishTraversal(QueryOutcome* answer, const TraversalOptions& options,
                       uint64_t query_id);

  const parallel::ParallelRStarTree& index_;
  EngineOptions options_;
  // Non-null when created through CreateMutable: the durably mutable
  // index whose snapshots, reader lock and epoch gate every traversal
  // rides (see RunTraversalImpl).
  storage::MutableIndex* mindex_ = nullptr;

  // Observability plumbing. The instruments live in metrics_ (owned or
  // external); the pointers below are null when unmetered. Declared
  // before the reader/cache/pool so the registry outlives them: an I/O
  // worker still observes its service-time histogram after the job's
  // completion rendezvous fires, so the pool must join its workers
  // (its destructor) before the registry goes away. An external
  // EngineOptions::metrics registry must outlive the engine for the
  // same reason.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::TraceRecorder> trace_;

  std::unique_ptr<StoredIndexReader> reader_;
  std::unique_ptr<ShardedPageCache> cache_;
  // Present only with EngineOptions::prefetch_adaptive (pooled mode).
  // Consulted by query threads per step; samples cache_/io_pool_
  // counters, so it is only used while both are alive.
  std::unique_ptr<AdaptivePrefetchController> prefetch_ctl_;
  // Speculative waste resolved outside the cache's accounting (jobs
  // cancelled in queue, or skipped/failed at execution) — the adaptive
  // controller adds this to the cache's prefetch_wasted for its signal.
  std::atomic<uint64_t> prefetch_wasted_extra_{0};
  // In-flight read table for serial_io mode; pooled mode coalesces via
  // the per-disk worker serialization + second-chance cache probe.
  ReadCoalescer coalescer_;
  // Empty unless a requested backend could not be built (see accessor).
  std::string io_fallback_reason_;
  // Declared last so it is destroyed first: the backend's threads drain
  // (including fire-and-forget prefetch jobs that touch cache_ and
  // reader_) before anything they reference goes away.
  std::unique_ptr<IoBackend> io_pool_;
  std::atomic<uint64_t> next_query_id_{0};
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* failures = nullptr;
    obs::Counter* steps = nullptr;
    obs::Counter* page_requests = nullptr;
    obs::Counter* pages_fetched = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* prefetch_issued = nullptr;
    // Incremented by the cache (hits, and evict/race waste — see
    // ShardedPageCache::SetPrefetchInstruments) and by the engine
    // (cancel/skip waste).
    obs::Counter* prefetch_hits = nullptr;
    obs::Counter* prefetch_wasted = nullptr;
    // Pages speculative jobs actually read — the carve-out that keeps
    // the per-disk reader totals reconcilable with demand pages_fetched
    // when prefetch is on (docs/OBSERVABILITY.md).
    obs::Counter* prefetch_pages_read = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::Histogram* latency_seconds = nullptr;
    obs::Histogram* batch_pages = nullptr;
  } instr_;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_PARALLEL_ENGINE_H_
