#include "exec/parallel_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "common/check.h"
#include "exec/uring_backend.h"

namespace sqp::exec {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Completion rendezvous for one activation batch: the query thread blocks
// until every per-disk job has reported in. One failing disk job records
// the batch's first error; the others still run to completion (and their
// fault counters still merge), so the pool's queues always drain.
struct BatchSync {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  common::Status error;
  IoFaultCounters counters;
  uint64_t coalesced = 0;  // pages found cached by the second-chance probe
  uint64_t prefetch_hits = 0;  // of those, frames a prefetch put there

  void Done(const common::Status& status, const IoFaultCounters& job,
            uint64_t job_coalesced, uint64_t job_prefetch_hits) {
    std::lock_guard<std::mutex> lock(mu);
    counters.Add(job);
    coalesced += job_coalesced;
    prefetch_hits += job_prefetch_hits;
    if (error.ok() && !status.ok()) error = status;
    if (--pending == 0) cv.notify_one();
  }

  common::Status Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
    return error;
  }
};

}  // namespace

common::Result<std::unique_ptr<ParallelQueryEngine>>
ParallelQueryEngine::Create(const parallel::ParallelRStarTree& index,
                            const storage::PageStore* store,
                            const EngineOptions& options) {
  SQP_CHECK(store != nullptr);
  if (options.query_threads < 1) {
    return common::Status::InvalidArgument("query_threads must be >= 1");
  }
  auto reader = StoredIndexReader::Open(store, options.retry);
  if (!reader.ok()) return reader.status();
  const storage::IndexLayout& layout = (*reader)->layout();
  if (layout.decluster.num_disks != index.num_disks()) {
    return common::Status::InvalidArgument(
        "store image has " + std::to_string(layout.decluster.num_disks) +
        " disks, index has " + std::to_string(index.num_disks()));
  }
  if (layout.root != index.tree().root() ||
      layout.object_count != index.tree().size()) {
    return common::Status::FailedPrecondition(
        "store image does not match the live index (stale save?)");
  }
  return std::unique_ptr<ParallelQueryEngine>(
      new ParallelQueryEngine(index, std::move(*reader), options));
}

common::Result<std::unique_ptr<ParallelQueryEngine>>
ParallelQueryEngine::CreateMutable(storage::MutableIndex* index,
                                   const EngineOptions& options) {
  SQP_CHECK(index != nullptr);
  if (options.query_threads < 1) {
    return common::Status::InvalidArgument("query_threads must be >= 1");
  }
  EngineOptions opts = options;
  // Prefetch hints name pages of one traversal's snapshot; issuing them
  // against the live page map could read a location the next commit
  // supersedes. Off until speculation is snapshot-aware.
  opts.prefetch_budget = 0;
  opts.prefetch_adaptive = false;

  // Point-in-time layout copy: the reader only uses it for the disk
  // count, page size and tree config, all immutable across commits AND
  // across generation flips (a checkpoint folds the same index into a
  // fresh generation; the shape never changes).
  storage::IndexLayout boot;
  {
    std::shared_lock<std::shared_mutex> lock(index->reader_mutex());
    boot = *index->layout_snapshot_locked();
  }
  // data_store() is the index's SwitchablePageStore facade, stable across
  // generation flips: the reader captures this one pointer for its
  // lifetime, and a checkpoint retargets the facade (under the writer
  // lock, epoch gate drained) instead of invalidating the pointer.
  auto reader = StoredIndexReader::OpenWithLayout(index->data_store(),
                                                 std::move(boot), opts.retry);
  if (!reader.ok()) return reader.status();
  auto engine = std::unique_ptr<ParallelQueryEngine>(
      new ParallelQueryEngine(index->index(), std::move(*reader), opts));
  engine->mindex_ = index;
  // Retire superseded frames on every commit. The callback runs under the
  // index's writer lock; the cache never calls back into the index, so
  // there is no lock cycle. Cleared again in ~ParallelQueryEngine.
  // full=true arrives on checkpoints — including background-compaction
  // folds — where every cached frame names a location in the retired
  // generation and the whole cache must go.
  ShardedPageCache* cache = engine->cache_.get();
  index->SetCommitCallback(
      [cache](const std::vector<uint64_t>& superseded, bool full) {
        if (full) {
          cache->InvalidateAll();
        } else {
          cache->Invalidate(superseded);
        }
      });
  return engine;
}

ParallelQueryEngine::ParallelQueryEngine(
    const parallel::ParallelRStarTree& index,
    std::unique_ptr<StoredIndexReader> reader, const EngineOptions& options)
    : index_(index), options_(options), reader_(std::move(reader)) {
  if (options.enable_metrics) {
    if (options.metrics != nullptr) {
      metrics_ = options.metrics;
    } else {
      owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
      metrics_ = owned_metrics_.get();
    }
    reader_->EnableMetrics(metrics_);
    instr_.queries = metrics_->GetCounter("sqp_engine_queries_total");
    instr_.failures =
        metrics_->GetCounter("sqp_engine_query_failures_total");
    instr_.steps = metrics_->GetCounter("sqp_engine_steps_total");
    instr_.page_requests =
        metrics_->GetCounter("sqp_engine_page_requests_total");
    instr_.pages_fetched =
        metrics_->GetCounter("sqp_engine_pages_fetched_total");
    instr_.coalesced =
        metrics_->GetCounter("sqp_engine_coalesced_reads_total");
    instr_.prefetch_issued =
        metrics_->GetCounter("sqp_engine_prefetch_issued_total");
    instr_.prefetch_hits =
        metrics_->GetCounter("sqp_engine_prefetch_hits_total");
    instr_.prefetch_wasted =
        metrics_->GetCounter("sqp_engine_prefetch_wasted_total");
    instr_.prefetch_pages_read =
        metrics_->GetCounter("sqp_engine_prefetch_pages_read_total");
    instr_.deadline_exceeded =
        metrics_->GetCounter("sqp_engine_deadline_exceeded_total");
    instr_.cancelled = metrics_->GetCounter("sqp_engine_cancelled_total");
    instr_.inflight = metrics_->GetGauge("sqp_engine_inflight_queries");
    instr_.latency_seconds =
        metrics_->GetHistogram("sqp_engine_query_latency_seconds",
                               obs::MetricsRegistry::LatencyBuckets());
    // Activation batches: 1..128 pages in power-of-two buckets (the
    // paper's batch sizes are bounded by the disk count times the span).
    instr_.batch_pages = metrics_->GetHistogram(
        "sqp_engine_batch_pages", obs::MetricsRegistry::PowerOfTwoBuckets(8));
  }
  if (options.trace_capacity > 0) {
    trace_ = std::make_unique<obs::TraceRecorder>(options.trace_capacity);
  }
  PageCacheOptions cache_options;
  cache_options.capacity_pages = options.cache_pages;
  cache_options.shards = options.cache_shards;
  cache_ = std::make_unique<ShardedPageCache>(cache_options, metrics_);
  // Prefetch hit/waste events are only observable inside the cache, but
  // they are engine-level quantities; route them into our counters.
  cache_->SetPrefetchInstruments(instr_.prefetch_hits,
                                 instr_.prefetch_wasted);
  if (options.io_backend == IoBackendKind::kUring) {
    if (options.serial_io) {
      io_fallback_reason_ = "serial_io mode reads on the query thread";
    } else {
      UringBackendOptions uring_options;
      uring_options.max_queue_depth = options.io_queue_depth;
      auto uring =
          UringIoBackend::Create(reader_->store(), metrics_, uring_options);
      if (uring.ok()) {
        io_pool_ = std::move(*uring);
      } else {
        io_fallback_reason_ = uring.status().message();
      }
    }
  }
  if (io_pool_ == nullptr) {
    DiskIoPoolOptions pool_options;
    pool_options.max_queue_depth = options.io_queue_depth;
    io_pool_ = std::make_unique<DiskIoPool>(reader_->num_disks(), metrics_,
                                            pool_options);
  }
  if (options.prefetch_adaptive && !options.serial_io) {
    AdaptivePrefetchController::Options ctl_options;
    // At most one speculative read per spindle beyond demand work.
    ctl_options.max_budget = reader_->num_disks();
    prefetch_ctl_ = std::make_unique<AdaptivePrefetchController>(
        ctl_options, [this] {
          AdaptivePrefetchController::Signals s;
          const PageCacheStats cs = cache_->GetStats();
          s.issued = io_pool_->speculative_issued();
          s.hits = cs.prefetch_hits;
          s.wasted = cs.prefetch_wasted +
                     prefetch_wasted_extra_.load(std::memory_order_relaxed);
          s.evictions = cs.evictions;
          s.insertions = cs.insertions;
          return s;
        });
  }
}

ParallelQueryEngine::~ParallelQueryEngine() {
  // Detach from the mutable index before the cache the commit callback
  // points at is torn down.
  if (mindex_ != nullptr) mindex_->SetCommitCallback(nullptr);
}

common::Status ParallelQueryEngine::FetchBatch(
    const std::vector<rstar::PageId>& ids,
    const std::vector<rstar::PageId>& prefetch_hints,
    const storage::IndexLayout& layout,
    std::vector<const FlatNode*>* slots, std::vector<uint64_t>* keys,
    QueryOutcome* outcome, obs::TraceSpan* span,
    const std::shared_ptr<PrefetchTally>& tally) {
  slots->assign(ids.size(), nullptr);
  keys->assign(ids.size(), 0);
  // Resolve every PageId against the traversal's snapshot up front: the
  // locations are the cache keys, and the snapshot (not the reader's
  // boot-time layout) is the authority on where a PageId's bytes live.
  std::vector<storage::PageLocation> locs(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!layout.IsLive(ids[i])) {
      return common::Status::InvalidArgument(
          "page " + std::to_string(ids[i]) +
          " is not live in this query's snapshot");
    }
    locs[i] = layout.pages[ids[i]];
    (*keys)[i] = storage::PageLocationKey(locs[i]);
  }
  // Lazily sized so a fully cached step leaves pages_per_disk empty.
  auto add_disk_pages = [this, span](int disk, uint32_t pages) {
    if (span == nullptr) return;
    if (span->pages_per_disk.empty()) {
      span->pages_per_disk.assign(
          static_cast<size_t>(reader_->num_disks()), 0);
    }
    span->pages_per_disk[static_cast<size_t>(disk)] += pages;
  };

  // Cache pass. Misses are grouped per disk, mirroring the declustering
  // assignment: each group becomes one job on that disk's worker.
  std::map<int, std::vector<size_t>> misses_by_disk;
  for (size_t i = 0; i < ids.size(); ++i) {
    bool prefetched = false;
    if (const FlatNode* node =
            cache_->LookupPinned((*keys)[i], &prefetched)) {
      (*slots)[i] = node;
      ++outcome->cache_hits;
      if (prefetched) ++outcome->prefetch_hits;
      if (span != nullptr) ++span->cache_hits;
      continue;
    }
    ++outcome->cache_misses;
    if (span != nullptr) ++span->cache_misses;
    add_disk_pages(locs[i].disk, locs[i].span);
    misses_by_disk[locs[i].disk].push_back(i);
  }

  if (options_.serial_io) {
    // Baseline mode: every missed page is one blocking read on this
    // thread — no disk-level overlap at all. Concurrent queries missing
    // the same page here would duplicate the pread + decode, so reads go
    // through the in-flight table: one leader reads, followers wait and
    // pick the page up from the cache.
    IoFaultCounters counters;
    common::Status failure;
    for (auto& [disk, slot_indices] : misses_by_disk) {
      for (size_t i : slot_indices) {
        const rstar::PageId id = ids[i];
        const uint64_t key = (*keys)[i];
        while ((*slots)[i] == nullptr && failure.ok()) {
          common::Status leader_status;
          if (coalescer_.BeginOrWait(key, &leader_status)) {
            // A previous leader may have read this page and completed in
            // the window between our cache-lookup miss and becoming
            // leader ourselves — re-probe before paying a duplicate read.
            bool late_prefetched = false;
            if (const core::FlatNode* cached =
                    cache_->ProbePinned(key, &late_prefetched)) {
              (*slots)[i] = cached;
              if (late_prefetched) ++outcome->prefetch_hits;
              coalescer_.Complete(key, common::Status::OK());
              continue;
            }
            common::Result<core::FlatNode> node =
                reader_->ReadFlatNodeAt(id, locs[i], &counters);
            common::Status read =
                node.ok() ? common::Status::OK() : node.status();
            if (node.ok()) {
              (*slots)[i] = cache_->InsertPinned(key, std::move(*node),
                                                 locs[i].span);
            } else {
              failure = read;
            }
            coalescer_.Complete(key, read);
          } else {
            // Joined a leader's read. The page was inserted just before
            // Complete; if it has already been evicted (tiny cache), loop
            // and become the leader ourselves.
            ++outcome->coalesced_reads;
            if (instr_.coalesced != nullptr) instr_.coalesced->Add(1);
            if (!leader_status.ok()) {
              failure = leader_status;
              break;
            }
            bool follower_prefetched = false;
            (*slots)[i] = cache_->ProbePinned(key, &follower_prefetched);
            if (follower_prefetched) ++outcome->prefetch_hits;
          }
        }
        if (!failure.ok()) break;
      }
      if (!failure.ok()) break;
    }
    outcome->io_faults += counters.faults;
    outcome->io_retries += counters.retries;
    if (span != nullptr) {
      span->io_faults += counters.faults;
      span->io_retries += counters.retries;
    }
    if (!failure.ok()) {
      for (size_t j = 0; j < ids.size(); ++j) {
        if ((*slots)[j] != nullptr) cache_->Unpin((*keys)[j]);
      }
      slots->assign(ids.size(), nullptr);
      return failure;
    }
    return common::Status::OK();
  }

  if (!misses_by_disk.empty() && io_pool_->completion_driven()) {
    // Completion-driven path: plan each disk's batched read up front
    // (buffer + merged-run accounting), hand the raw requests to the
    // backend, and finish — decode, fault-fallback, insert-pinned — from
    // the backend's completion context. No thread parks per disk; the
    // traversal resumes when the last disk's completion fires sync.Done.
    //
    // Deep in-flight windows mean the per-disk FIFO no longer serializes
    // duplicate reads the way DiskIoPool's single worker does, so the
    // second-chance probe of the pooled path can't coalesce here: two
    // queries missing the same page would both reach the media. The
    // in-flight table partitions each disk's misses instead — pages this
    // query *leads* (it submits the read and publishes the outcome) and
    // pages some other query is already reading (joined after our own
    // submissions, below).
    BatchSync sync;
    struct LeaderGroup {
      int disk;
      std::vector<size_t> slots;  // indices into ids/keys/slots
    };
    std::vector<LeaderGroup> groups;
    groups.reserve(misses_by_disk.size());
    std::vector<size_t> deferred;
    for (auto& [disk, slot_indices] : misses_by_disk) {
      LeaderGroup g{disk, {}};
      for (size_t i : slot_indices) {
        if (coalescer_.TryBegin((*keys)[i])) {
          g.slots.push_back(i);
        } else {
          deferred.push_back(i);
        }
      }
      if (!g.slots.empty()) groups.push_back(std::move(g));
    }
    sync.pending = static_cast<int>(groups.size());
    for (LeaderGroup& group : groups) {
      auto plan = std::make_shared<ReadBatchPlan>();
      {
        std::vector<rstar::PageId> group_ids;
        std::vector<storage::PageLocation> group_locs;
        group_ids.reserve(group.slots.size());
        group_locs.reserve(group.slots.size());
        for (size_t i : group.slots) {
          group_ids.push_back(ids[i]);
          group_locs.push_back(locs[i]);
        }
        common::Status planned =
            reader_->PlanBatchRead(group_ids, group_locs, plan.get());
        if (!planned.ok()) {
          for (size_t i : group.slots) {
            coalescer_.Complete((*keys)[i], planned);
          }
          sync.Done(planned, IoFaultCounters{}, 0, 0);
          continue;
        }
      }
      // The requests point into plan->bytes; the plan (and with it the
      // buffer) is kept alive by the completion closure. `keys`, `slots`
      // and `groups` live on this thread's stack across sync.Wait(), so
      // the closure borrows them safely.
      std::vector<storage::ReadRequest> requests = plan->requests;
      io_pool_->SubmitBatchRead(
          group.disk, std::move(requests),
          [this, plan, keys, slots, &sync,
           group_slots = &group.slots](common::Status batch) {
            IoFaultCounters counters;
            bool bytes_valid = false;
            common::Status result =
                reader_->NoteBatchOutcome(batch, &bytes_valid, &counters);
            size_t n = 0;
            if (result.ok()) {
              for (; n < group_slots->size(); ++n) {
                const size_t i = (*group_slots)[n];
                auto flat =
                    reader_->FinishFlatRecord(plan.get(), n, bytes_valid,
                                              &counters);
                if (!flat.ok()) {
                  result = flat.status();
                  break;
                }
                (*slots)[i] = cache_->InsertPinned(
                    (*keys)[i], std::move(*flat), plan->locs[n].span);
                coalescer_.Complete((*keys)[i], common::Status::OK());
              }
            }
            // Keys not published above (batch failure, or a decode
            // stopping the loop early) still owe their followers an
            // outcome.
            for (; n < group_slots->size(); ++n) {
              coalescer_.Complete((*keys)[(*group_slots)[n]], result);
            }
            sync.Done(result, counters, 0, 0);
          });
    }
    IssuePrefetch(prefetch_hints, misses_by_disk, outcome, tally);
    // Pick up the deferred pages: their leaders (other queries' batches,
    // or our own submissions above) complete via the backend's reactor,
    // never on this thread, so blocking here cannot deadlock.
    common::Status follow_failure;
    uint64_t followed = 0;
    uint64_t follow_prefetch_hits = 0;
    IoFaultCounters follow_counters;
    for (size_t i : deferred) {
      const uint64_t key = (*keys)[i];
      while ((*slots)[i] == nullptr && follow_failure.ok()) {
        common::Status leader_status;
        if (coalescer_.BeginOrWait(key, &leader_status)) {
          // The leader finished but its page is already gone (tiny
          // cache): re-probe, then read serially ourselves. Rare by
          // construction.
          bool late_prefetched = false;
          if (const core::FlatNode* cached =
                  cache_->ProbePinned(key, &late_prefetched)) {
            (*slots)[i] = cached;
            if (late_prefetched) ++follow_prefetch_hits;
            coalescer_.Complete(key, common::Status::OK());
            continue;
          }
          common::Result<core::FlatNode> node =
              reader_->ReadFlatNodeAt(ids[i], locs[i], &follow_counters);
          common::Status read =
              node.ok() ? common::Status::OK() : node.status();
          if (node.ok()) {
            (*slots)[i] = cache_->InsertPinned(key, std::move(*node),
                                               locs[i].span);
          } else {
            follow_failure = read;
          }
          coalescer_.Complete(key, read);
        } else {
          ++followed;
          if (!leader_status.ok()) {
            follow_failure = leader_status;
            break;
          }
          bool follower_prefetched = false;
          (*slots)[i] = cache_->ProbePinned(key, &follower_prefetched);
          if (follower_prefetched) ++follow_prefetch_hits;
        }
      }
      if (!follow_failure.ok()) break;
    }
    common::Status batch = sync.Wait();
    if (batch.ok() && !follow_failure.ok()) batch = follow_failure;
    outcome->coalesced_reads += followed;
    if (instr_.coalesced != nullptr && followed > 0) {
      instr_.coalesced->Add(static_cast<int64_t>(followed));
    }
    outcome->io_faults += sync.counters.faults + follow_counters.faults;
    outcome->io_retries += sync.counters.retries + follow_counters.retries;
    outcome->prefetch_hits += sync.prefetch_hits + follow_prefetch_hits;
    if (span != nullptr) {
      span->io_faults += sync.counters.faults + follow_counters.faults;
      span->io_retries += sync.counters.retries + follow_counters.retries;
    }
    if (!batch.ok()) {
      for (size_t i = 0; i < ids.size(); ++i) {
        if ((*slots)[i] != nullptr) cache_->Unpin((*keys)[i]);
      }
      slots->assign(ids.size(), nullptr);
      return batch;
    }
    return common::Status::OK();
  }

  if (!misses_by_disk.empty()) {
    BatchSync sync;
    sync.pending = static_cast<int>(misses_by_disk.size());
    for (auto& [disk, slot_indices] : misses_by_disk) {
      // The worker fills its group's slots with pinned cache entries.
      // Only fully decoded (checksum-verified) nodes are ever inserted,
      // so a faulty read can never poison the shared cache.
      // `ids`, `locs` and `keys` live on this thread's stack across
      // sync.Wait(), so the jobs borrow them by reference safely.
      io_pool_->Submit(disk, [this, &ids, &locs, keys, slots, &sync,
                              group = &slot_indices] {
        // Second-chance probe: a page's primary location maps to exactly
        // one disk, and this worker runs that disk's jobs in order — so
        // if another query missed the same page and its job ran first,
        // the page is cached by now and the backend read is coalesced
        // away. The probe is uncounted (the miss was already booked by
        // the query thread's lookup).
        std::vector<rstar::PageId> to_read;
        std::vector<storage::PageLocation> to_read_locs;
        std::vector<size_t> to_read_slots;
        uint64_t job_coalesced = 0;
        uint64_t job_prefetch_hits = 0;
        to_read.reserve(group->size());
        to_read_locs.reserve(group->size());
        to_read_slots.reserve(group->size());
        for (size_t i : *group) {
          bool prefetched = false;
          if (const FlatNode* node = cache_->ProbePinned((*keys)[i],
                                                         &prefetched)) {
            (*slots)[i] = node;
            ++job_coalesced;
            if (prefetched) ++job_prefetch_hits;
          } else {
            to_read.push_back(ids[i]);
            to_read_locs.push_back(locs[i]);
            to_read_slots.push_back(i);
          }
        }
        std::vector<core::FlatNode> nodes;
        IoFaultCounters counters;
        common::Status read = common::Status::OK();
        if (!to_read.empty()) {
          read = reader_->ReadFlatNodesAt(to_read, to_read_locs, &nodes,
                                          &counters);
          if (read.ok()) {
            for (size_t n = 0; n < to_read.size(); ++n) {
              const size_t i = to_read_slots[n];
              (*slots)[i] = cache_->InsertPinned(
                  (*keys)[i], std::move(nodes[n]), to_read_locs[n].span);
            }
          }
        }
        sync.Done(read, counters, job_coalesced, job_prefetch_hits);
      });
    }
    IssuePrefetch(prefetch_hints, misses_by_disk, outcome, tally);
    common::Status batch = sync.Wait();
    outcome->io_faults += sync.counters.faults;
    outcome->io_retries += sync.counters.retries;
    outcome->coalesced_reads += sync.coalesced;
    outcome->prefetch_hits += sync.prefetch_hits;
    if (instr_.coalesced != nullptr && sync.coalesced > 0) {
      instr_.coalesced->Add(static_cast<int64_t>(sync.coalesced));
    }
    if (span != nullptr) {
      span->io_faults += sync.counters.faults;
      span->io_retries += sync.counters.retries;
    }
    if (!batch.ok()) {
      for (size_t i = 0; i < ids.size(); ++i) {
        if ((*slots)[i] != nullptr) cache_->Unpin((*keys)[i]);
      }
      slots->assign(ids.size(), nullptr);
      return batch;
    }
  } else {
    IssuePrefetch(prefetch_hints, misses_by_disk, outcome, tally);
  }
  return common::Status::OK();
}

void ParallelQueryEngine::NotePrefetchWasted(
    const std::shared_ptr<PrefetchTally>& tally) {
  prefetch_wasted_extra_.fetch_add(1, std::memory_order_relaxed);
  if (instr_.prefetch_wasted != nullptr) instr_.prefetch_wasted->Add(1);
  if (tally != nullptr) {
    tally->wasted.fetch_add(1, std::memory_order_relaxed);
  }
}

void ParallelQueryEngine::IssuePrefetch(
    const std::vector<rstar::PageId>& hints,
    const std::map<int, std::vector<size_t>>& busy_disks,
    QueryOutcome* outcome, const std::shared_ptr<PrefetchTally>& tally) {
  if (options_.serial_io) return;
  // Consult the controller every step (its refresh clock runs on
  // consults) even when this step carries no hints.
  int budget = prefetch_ctl_ != nullptr ? prefetch_ctl_->Consult()
                                        : options_.prefetch_budget;
  if (budget <= 0 || hints.empty()) return;
  // Prefetch only runs in static-image mode (CreateMutable forces it
  // off), so the reader's boot-time layout is the live page map and its
  // location keys match the ones FetchBatch derives per snapshot.
  for (rstar::PageId hint : hints) {
    if (budget <= 0) break;
    auto loc = reader_->LocationOf(hint);
    if (!loc.ok()) continue;
    const uint64_t key = storage::PageLocationKey(*loc);
    // Demand misses own their disks this step; speculation only rides on
    // disks the batch left idle (batch < NumDisks — the idle-spindle
    // window CRSS's candidate runs are meant to fill)...
    if (busy_disks.count(loc->disk) != 0) continue;
    // ...and only on disks with no *other* queries' demand work queued
    // or in service (demand_busy): under concurrency every spindle is
    // somebody's demand spindle, and a speculative read still costs a
    // full media service time. Queue depth alone misses the saturated
    // case — a disk mid-demand-read with an empty queue is not idle.
    if (io_pool_->demand_busy(loc->disk)) continue;
    if (cache_->Contains(key)) continue;  // already resident
    const int disk = loc->disk;
    const uint32_t span_pages = loc->span;
    const storage::PageLocation hint_loc = *loc;
    // Fire-and-forget speculative-class job: demand jobs overtake it in
    // queue, and the cancel predicate retires it unread if its page
    // arrives some other way first. A full speculative queue simply
    // drops it (queue_rejections counts the drop). The engine's
    // destruction order guarantees the pool drains before cache/reader
    // go away; `tally` is shared, so it outlives the issuing query.
    const bool accepted = io_pool_->SubmitSpeculative(
        disk,
        [this, hint, hint_loc, key, span_pages, tally] {
          if (cache_->Contains(key)) {
            // A demand read (or another prefetch) beat us between the
            // cancel check and now.
            NotePrefetchWasted(tally);
            return;
          }
          common::Result<core::FlatNode> node =
              reader_->ReadFlatNodeAt(hint, hint_loc);
          if (!node.ok()) {
            // Speculation failing is not an error, but it bought nothing.
            NotePrefetchWasted(tally);
            return;
          }
          if (instr_.prefetch_pages_read != nullptr) {
            instr_.prefetch_pages_read->Add(span_pages);
          }
          cache_->InsertPinned(key, std::move(*node), span_pages,
                               /*speculative=*/true);
          cache_->Unpin(key);
        },
        [this, key, tally] {
          if (!cache_->Contains(key)) return false;
          NotePrefetchWasted(tally);
          return true;
        });
    if (accepted) {
      --budget;
      ++outcome->prefetch_issued;
      if (instr_.prefetch_issued != nullptr) instr_.prefetch_issued->Add(1);
    }
  }
}

QueryOutcome ParallelQueryEngine::RunQuery(const EngineQuery& query) {
  TraversalOptions topts;
  topts.algo_name = core::AlgorithmName(query.algo);
  topts.deadline_s = query.deadline_s;
  topts.control = query.control;
  // The algorithm is constructed inside the factory so that, in mutable
  // mode, its Begin-time reads of the tree happen under the index's
  // reader lock — the same hold that captured the page-map snapshot.
  std::unique_ptr<core::SearchAlgorithm> algo;
  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (instr_.inflight != nullptr) instr_.inflight->Add(1);
  QueryOutcome answer = RunTraversalImpl(
      [this, &query, &algo]() -> core::BatchTraversal* {
        algo = core::MakeAlgorithm(query.algo, index_.tree(), query.point,
                                   query.k, reader_->num_disks());
        return algo.get();
      },
      topts, query_id);
  FinishTraversal(&answer, topts, query_id);
  if (answer.status.ok()) answer.neighbors = algo->result().Sorted();
  return answer;
}

QueryOutcome ParallelQueryEngine::RunTraversal(
    core::BatchTraversal* traversal, const TraversalOptions& options) {
  const uint64_t query_id =
      next_query_id_.fetch_add(1, std::memory_order_relaxed);
  if (instr_.inflight != nullptr) instr_.inflight->Add(1);
  QueryOutcome answer = RunTraversalImpl(
      [traversal]() -> core::BatchTraversal* { return traversal; }, options,
      query_id);
  FinishTraversal(&answer, options, query_id);
  return answer;
}

void ParallelQueryEngine::FinishTraversal(QueryOutcome* answer_ptr,
                                          const TraversalOptions& options,
                                          uint64_t query_id) {
  QueryOutcome& answer = *answer_ptr;
  if (instr_.queries != nullptr) {
    instr_.queries->Add(1);
    if (!answer.status.ok()) instr_.failures->Add(1);
    if (answer.deadline_exceeded) instr_.deadline_exceeded->Add(1);
    if (answer.status.code() == common::StatusCode::kCancelled) {
      instr_.cancelled->Add(1);
    }
    instr_.latency_seconds->Observe(answer.latency_s);
  }
  if (instr_.inflight != nullptr) instr_.inflight->Add(-1);
  if (trace_ != nullptr) {
    // The whole-query closing span: totals plus end-to-end wall time.
    obs::TraceSpan span;
    span.query_id = query_id;
    span.phase = "query";
    span.algo = options.algo_name;
    span.step = static_cast<uint32_t>(answer.steps);
    span.pages = static_cast<uint32_t>(answer.pages_fetched);
    span.cache_hits = static_cast<uint32_t>(answer.cache_hits);
    span.cache_misses = static_cast<uint32_t>(answer.cache_misses);
    span.io_faults = answer.io_faults;
    span.io_retries = answer.io_retries;
    span.start_s = trace_->NowSeconds() - answer.latency_s;
    span.process_s = answer.latency_s;
    trace_->Record(std::move(span));
  }
}

QueryOutcome ParallelQueryEngine::RunTraversalImpl(
    const std::function<core::BatchTraversal*()>& factory,
    const TraversalOptions& options, uint64_t query_id) {
  QueryOutcome answer;
  answer.query_id = query_id;
  const double start = NowSeconds();
  const double deadline =
      options.deadline_s > 0.0 ? start + options.deadline_s
                               : std::numeric_limits<double>::infinity();

  // Prefetch attribution shared with this traversal's fire-and-forget
  // speculative jobs; their waste events recorded after the traversal
  // returns go to the global counters only.
  std::shared_ptr<PrefetchTally> tally;
  if (!options_.serial_io &&
      (options_.prefetch_budget > 0 || prefetch_ctl_ != nullptr)) {
    tally = std::make_shared<PrefetchTally>();
  }
  auto tally_wasted = [&answer, &tally] {
    if (tally != nullptr) {
      answer.prefetch_wasted =
          tally->wasted.load(std::memory_order_relaxed);
    }
  };

  std::vector<const FlatNode*> slots;
  std::vector<uint64_t> keys;

  // Snapshot acquisition. In mutable mode the page map, the reclamation
  // epoch and the traversal's Begin()-time reads of the tree must all be
  // captured under one hold of the index's reader lock — Begin() is the
  // only point an algorithm dereferences the tree, so after the lock
  // drops the traversal runs entirely off the immutable snapshot. The
  // epoch is released on every exit path; it keeps Checkpoint() from
  // reclaiming bytes this query's locations still name.
  struct GateExit {
    storage::EpochGate* gate = nullptr;
    uint64_t epoch = 0;
    ~GateExit() {
      if (gate != nullptr) gate->Exit(epoch);
    }
  } gate_exit;
  std::shared_ptr<const storage::IndexLayout> layout;
  core::BatchTraversal* traversal = nullptr;
  core::StepResult step;
  if (mindex_ != nullptr) {
    std::shared_lock<std::shared_mutex> lock(mindex_->reader_mutex());
    if (mindex_->failed()) {
      answer.status = common::Status::Unavailable(
          "index poisoned by an earlier commit failure; recover by "
          "reopening from the log");
      answer.latency_s = NowSeconds() - start;
      tally_wasted();
      return answer;
    }
    layout = mindex_->layout_snapshot_locked();
    gate_exit.gate = &mindex_->gate();
    gate_exit.epoch = gate_exit.gate->Enter();
    traversal = factory();
    step = traversal->Begin();
  } else {
    // Static image: the reader's boot-time layout IS the page map, and
    // nothing ever supersedes it. Aliasing shared_ptr — no ownership.
    layout = std::shared_ptr<const storage::IndexLayout>(
        std::shared_ptr<void>(), &reader_->layout());
    traversal = factory();
    step = traversal->Begin();
  }
  uint32_t step_index = 0;
  while (!step.done) {
    SQP_CHECK(!step.requests.empty());
    // Deadline and cancellation are honoured at step boundaries only —
    // the one place no page pins are held, so stopping here can never
    // leak a pinned cache frame or hand the traversal a dangling node.
    if (options.control != nullptr &&
        options.control->cancel.load(std::memory_order_relaxed)) {
      answer.status = common::Status::Cancelled(
          std::string(options.algo_name) + " query cancelled after " +
          std::to_string(answer.steps) + " steps");
      answer.latency_s = NowSeconds() - start;
      tally_wasted();
      return answer;
    }
    if (NowSeconds() > deadline) {
      answer.deadline_exceeded = true;
      answer.status = common::Status::DeadlineExceeded(
          std::string(options.algo_name) + " query exceeded its " +
          std::to_string(options.deadline_s) + " s deadline");
      answer.latency_s = NowSeconds() - start;
      tally_wasted();
      return answer;
    }
    ++answer.steps;

    obs::TraceSpan span;
    obs::TraceSpan* span_ptr = nullptr;
    double fetch_start = 0.0, fetch_end = 0.0;
    if (trace_ != nullptr) {
      span_ptr = &span;
      span.query_id = query_id;
      span.phase = "step";
      span.algo = options.algo_name;
      span.step = step_index;
      span.batch_requests = static_cast<uint32_t>(step.requests.size());
      fetch_start = NowSeconds();
      span.start_s = fetch_start - trace_->epoch_seconds();
    }
    answer.status = FetchBatch(step.requests, step.prefetch_hints, *layout,
                               &slots, &keys, &answer, span_ptr, tally);
    if (span_ptr != nullptr) fetch_end = NowSeconds();
    if (instr_.steps != nullptr) {
      instr_.steps->Add(1);
      instr_.page_requests->Add(step.requests.size());
    }
    if (!answer.status.ok()) {
      if (span_ptr != nullptr) {
        span.fetch_s = fetch_end - fetch_start;
        trace_->Record(std::move(span));
      }
      answer.latency_s = NowSeconds() - start;
      tally_wasted();
      return answer;
    }
    std::vector<core::FetchedPage> pages;
    pages.reserve(step.requests.size());
    uint32_t step_pages = 0;
    for (size_t i = 0; i < step.requests.size(); ++i) {
      pages.push_back({step.requests[i], slots[i]});
      step_pages += layout->pages[step.requests[i]].span;
    }
    answer.pages_fetched += step_pages;
    if (instr_.pages_fetched != nullptr) {
      instr_.pages_fetched->Add(step_pages);
      instr_.batch_pages->Observe(static_cast<double>(step_pages));
    }
    step = traversal->OnPagesFetched(pages);
    // Pins are held across the callback (the algorithm borrows the node
    // pointers) and released immediately after.
    for (size_t i = 0; i < pages.size(); ++i) cache_->Unpin(keys[i]);
    if (span_ptr != nullptr) {
      span.pages = step_pages;
      span.fetch_s = fetch_end - fetch_start;
      span.process_s = NowSeconds() - fetch_end;
      trace_->Record(std::move(span));
    }
    if (options.on_step) options.on_step();
    ++step_index;
  }
  answer.latency_s = NowSeconds() - start;
  tally_wasted();
  return answer;
}

std::vector<QueryAnswer> ParallelQueryEngine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  std::vector<QueryAnswer> answers(queries.size());
  if (queries.empty()) return answers;
  const int n_threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(options_.query_threads),
                       queries.size()));
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      answers[i] = RunQuery(queries[i]);
    }
  };
  if (n_threads == 1) {
    drain();
    return answers;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) workers.emplace_back(drain);
  for (std::thread& t : workers) t.join();
  return answers;
}

}  // namespace sqp::exec
