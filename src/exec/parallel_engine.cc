#include "exec/parallel_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/check.h"

namespace sqp::exec {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Completion rendezvous for one activation batch: the query thread blocks
// until every per-disk job has reported in. One failing disk job records
// the batch's first error; the others still run to completion (and their
// fault counters still merge), so the pool's queues always drain.
struct BatchSync {
  std::mutex mu;
  std::condition_variable cv;
  int pending = 0;
  common::Status error;
  IoFaultCounters counters;

  void Done(const common::Status& status, const IoFaultCounters& job) {
    std::lock_guard<std::mutex> lock(mu);
    counters.Add(job);
    if (error.ok() && !status.ok()) error = status;
    if (--pending == 0) cv.notify_one();
  }

  common::Status Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return pending == 0; });
    return error;
  }
};

}  // namespace

common::Result<std::unique_ptr<ParallelQueryEngine>>
ParallelQueryEngine::Create(const parallel::ParallelRStarTree& index,
                            const storage::PageStore* store,
                            const EngineOptions& options) {
  SQP_CHECK(store != nullptr);
  if (options.query_threads < 1) {
    return common::Status::InvalidArgument("query_threads must be >= 1");
  }
  auto reader = StoredIndexReader::Open(store, options.retry);
  if (!reader.ok()) return reader.status();
  const storage::IndexLayout& layout = (*reader)->layout();
  if (layout.decluster.num_disks != index.num_disks()) {
    return common::Status::InvalidArgument(
        "store image has " + std::to_string(layout.decluster.num_disks) +
        " disks, index has " + std::to_string(index.num_disks()));
  }
  if (layout.root != index.tree().root() ||
      layout.object_count != index.tree().size()) {
    return common::Status::FailedPrecondition(
        "store image does not match the live index (stale save?)");
  }
  return std::unique_ptr<ParallelQueryEngine>(
      new ParallelQueryEngine(index, std::move(*reader), options));
}

ParallelQueryEngine::ParallelQueryEngine(
    const parallel::ParallelRStarTree& index,
    std::unique_ptr<StoredIndexReader> reader, const EngineOptions& options)
    : index_(index), options_(options), reader_(std::move(reader)) {
  PageCacheOptions cache_options;
  cache_options.capacity_pages = options.cache_pages;
  cache_options.shards = options.cache_shards;
  cache_ = std::make_unique<ShardedPageCache>(cache_options);
  io_pool_ = std::make_unique<DiskIoPool>(reader_->num_disks());
}

ParallelQueryEngine::~ParallelQueryEngine() = default;

common::Status ParallelQueryEngine::FetchBatch(
    const std::vector<rstar::PageId>& ids,
    std::vector<const rstar::Node*>* slots, QueryOutcome* outcome) {
  slots->assign(ids.size(), nullptr);

  // Cache pass. Misses are grouped per disk, mirroring the declustering
  // assignment: each group becomes one job on that disk's worker.
  std::map<int, std::vector<size_t>> misses_by_disk;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (const rstar::Node* node = cache_->LookupPinned(ids[i])) {
      (*slots)[i] = node;
      ++outcome->cache_hits;
      continue;
    }
    auto loc = reader_->LocationOf(ids[i]);
    if (!loc.ok()) {
      // Unpin what this round already pinned before bailing.
      for (size_t j = 0; j < i; ++j) {
        if ((*slots)[j] != nullptr) cache_->Unpin(ids[j]);
      }
      slots->assign(ids.size(), nullptr);
      return loc.status();
    }
    ++outcome->cache_misses;
    misses_by_disk[loc->disk].push_back(i);
  }

  if (options_.serial_io) {
    // Baseline mode: every missed page is one blocking read on this
    // thread — no disk-level overlap at all.
    IoFaultCounters counters;
    for (auto& [disk, slot_indices] : misses_by_disk) {
      for (size_t i : slot_indices) {
        const rstar::PageId id = ids[i];
        common::Result<rstar::Node> node = reader_->ReadNode(id, &counters);
        if (!node.ok()) {
          for (size_t j = 0; j < ids.size(); ++j) {
            if ((*slots)[j] != nullptr) cache_->Unpin(ids[j]);
          }
          slots->assign(ids.size(), nullptr);
          outcome->io_faults += counters.faults;
          outcome->io_retries += counters.retries;
          return node.status();
        }
        (*slots)[i] = cache_->InsertPinned(
            id, std::move(*node), reader_->layout().pages[id].span);
      }
    }
    outcome->io_faults += counters.faults;
    outcome->io_retries += counters.retries;
    return common::Status::OK();
  }

  if (!misses_by_disk.empty()) {
    BatchSync sync;
    sync.pending = static_cast<int>(misses_by_disk.size());
    for (auto& [disk, slot_indices] : misses_by_disk) {
      // The worker fills its group's slots with pinned cache entries.
      // Only fully decoded (checksum-verified) nodes are ever inserted,
      // so a faulty read can never poison the shared cache.
      io_pool_->Submit(disk, [this, &ids, slots, &sync,
                              group = &slot_indices] {
        std::vector<rstar::PageId> group_ids;
        group_ids.reserve(group->size());
        for (size_t i : *group) group_ids.push_back(ids[i]);
        std::vector<rstar::Node> nodes;
        IoFaultCounters counters;
        common::Status read =
            reader_->ReadNodes(group_ids, &nodes, &counters);
        if (read.ok()) {
          for (size_t n = 0; n < group->size(); ++n) {
            const rstar::PageId id = group_ids[n];
            const uint32_t span = reader_->layout().pages[id].span;
            (*slots)[(*group)[n]] =
                cache_->InsertPinned(id, std::move(nodes[n]), span);
          }
        }
        sync.Done(read, counters);
      });
    }
    common::Status batch = sync.Wait();
    outcome->io_faults += sync.counters.faults;
    outcome->io_retries += sync.counters.retries;
    if (!batch.ok()) {
      for (size_t i = 0; i < ids.size(); ++i) {
        if ((*slots)[i] != nullptr) cache_->Unpin(ids[i]);
      }
      slots->assign(ids.size(), nullptr);
      return batch;
    }
  }
  return common::Status::OK();
}

QueryAnswer ParallelQueryEngine::RunQuery(const EngineQuery& query) {
  QueryAnswer answer;
  const double start = NowSeconds();
  auto algo = core::MakeAlgorithm(query.algo, index_.tree(), query.point,
                                  query.k, reader_->num_disks());

  std::vector<const rstar::Node*> slots;
  core::StepResult step = algo->Begin();
  while (!step.done) {
    SQP_CHECK(!step.requests.empty());
    ++answer.steps;

    answer.status = FetchBatch(step.requests, &slots, &answer);
    if (!answer.status.ok()) {
      answer.latency_s = NowSeconds() - start;
      return answer;
    }
    std::vector<core::FetchedPage> pages;
    pages.reserve(step.requests.size());
    for (size_t i = 0; i < step.requests.size(); ++i) {
      pages.push_back({step.requests[i], slots[i]});
      answer.pages_fetched +=
          reader_->layout().pages[step.requests[i]].span;
    }
    step = algo->OnPagesFetched(pages);
    // Pins are held across the callback (the algorithm borrows the node
    // pointers) and released immediately after.
    for (const core::FetchedPage& p : pages) cache_->Unpin(p.id);
  }
  answer.neighbors = algo->result().Sorted();
  answer.latency_s = NowSeconds() - start;
  return answer;
}

std::vector<QueryAnswer> ParallelQueryEngine::RunBatch(
    const std::vector<EngineQuery>& queries) {
  std::vector<QueryAnswer> answers(queries.size());
  if (queries.empty()) return answers;
  const int n_threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(options_.query_threads),
                       queries.size()));
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= queries.size()) return;
      answers[i] = RunQuery(queries[i]);
    }
  };
  if (n_threads == 1) {
    drain();
    return answers;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(n_threads));
  for (int t = 0; t < n_threads; ++t) workers.emplace_back(drain);
  for (std::thread& t : workers) t.join();
  return answers;
}

}  // namespace sqp::exec
