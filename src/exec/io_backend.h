// The seam between the execution engine and its I/O machinery.
//
// The engine schedules two classes of disk work (docs/EXECUTION.md):
// demand reads a query is blocked on, and cancellable speculation nobody
// waits for. How that work reaches the media is a backend choice:
//
//   * DiskIoPool ("threads", io_pool.h) — one blocking worker thread per
//     disk, the wall-clock form of the paper's per-spindle FCFS queues.
//   * UringIoBackend ("uring", uring_backend.h) — a single completion
//     reactor driving one io_uring shared by all disks, with deep
//     per-disk in-flight windows and no thread parked per spindle.
//
// Both present the same contract: demand work has strict priority over
// speculation on its spindle, speculative jobs carry a cancel predicate
// evaluated before the media is touched (cancelled entries are either
// never submitted or reaped-and-dropped), and the conservation identity
// speculative_issued == speculative_completed + speculative_cancelled
// holds once the queues drain. The engine's headline invariant — query
// answers bit-identical to the sequential executor — holds under every
// backend, because delivery order is the engine's business, not the
// backend's.
//
// A backend may additionally be *completion-driven* (completion_driven()
// returns true): the engine then hands it raw byte-level read batches
// (SubmitBatchRead) and resumes the waiting traversal from the backend's
// completion context, instead of wrapping the read in a closure executed
// by a per-disk thread.

#ifndef SQP_EXEC_IO_BACKEND_H_
#define SQP_EXEC_IO_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "storage/page_store.h"

namespace sqp::exec {

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  // Stable identifier for banners, bench metadata and tests: "threads" or
  // "uring".
  virtual const char* name() const = 0;

  virtual int num_disks() const = 0;

  // Demand-class closure job on `disk`; blocks while the demand queue is
  // at capacity. Must not be called from a backend worker/reactor thread.
  virtual void Submit(int disk, std::function<void()> job) = 0;

  // Non-blocking demand variant: false (job dropped, rejection counted)
  // when the queue is full or the backend is stopping.
  virtual bool TrySubmit(int disk, std::function<void()> job) = 0;

  // Speculative-class closure job: runs only while `disk` has no demand
  // work, skipped (counted cancelled) if `cancel` returns true at the
  // moment it would start or the backend shuts down first. Never blocks;
  // false on a full speculative queue.
  virtual bool SubmitSpeculative(int disk, std::function<void()> job,
                                 std::function<bool()> cancel = nullptr) = 0;

  // True when the backend natively executes byte-level read batches and
  // invokes completions from its own reactor context (SubmitBatchRead).
  virtual bool completion_driven() const { return false; }

  // Completion-driven demand path: read every request of the batch (the
  // backend merges offset-adjacent requests of a disk into single media
  // accesses, exactly like PageStore::ReadPages), then invoke `done` once
  // with the batch outcome from the backend's completion context. The
  // request buffers must stay valid until `done` runs. Blocks the caller
  // only for backpressure, never for the I/O itself. Only meaningful when
  // completion_driven(); the base implementation aborts.
  virtual void SubmitBatchRead(int disk,
                               std::vector<storage::ReadRequest> requests,
                               std::function<void(common::Status)> done) {
    (void)disk;
    (void)requests;
    (void)done;
    SQP_CHECK(false && "backend is not completion-driven");
  }

  // Demand jobs (closures and read batches) completed so far.
  virtual uint64_t jobs_completed() const = 0;

  // Times a blocking submission stalled for queue space.
  virtual uint64_t backpressure_waits() const = 0;

  // Jobs dropped for lack of queue space.
  virtual uint64_t queue_rejections() const = 0;

  // Speculative-class conservation: once drained,
  // issued == completed + cancelled.
  virtual uint64_t speculative_issued() const = 0;
  virtual uint64_t speculative_completed() const = 0;
  virtual uint64_t speculative_cancelled() const = 0;

  // Demand jobs queued on `disk` right now (not counting work in flight).
  virtual size_t demand_queue_depth(int disk) const = 0;

  // True when `disk` has demand work queued or in flight — the engine's
  // prefetch issue-time gate.
  virtual bool demand_busy(int disk) const = 0;

  // True when the calling thread belongs to this backend (a worker, an
  // executor, or the completion reactor). Submitting demand work from one
  // is a contract violation (debug builds abort in Submit).
  virtual bool OnWorkerThread() const = 0;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_IO_BACKEND_H_
