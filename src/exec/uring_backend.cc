#include "exec/uring_backend.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/check.h"

#if defined(SQP_HAVE_IO_URING)
#include <linux/io_uring.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace sqp::exec {
namespace {

[[maybe_unused]] bool ForcedOff() {
  const char* v = std::getenv("SQP_FORCE_NO_URING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

#if defined(SQP_HAVE_IO_URING)

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The kernel writes the CQ tail and SQ head; we write the SQ tail and CQ
// head. Acquire/release through the shared ring pages — the __atomic
// builtins are what liburing uses, and TSan instruments them.
unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}
void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

int SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}
int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(
      syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
              nullptr, 0));
}
int SysUringRegister(int fd, unsigned opcode, const void* arg,
                     unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg,
                                  nr_args));
}

// Identifies the backend (if any) whose reactor or executor is running on
// this thread — same role as DiskIoPool's tls_worker_pool.
thread_local const void* tls_uring_backend = nullptr;

#endif  // SQP_HAVE_IO_URING

}  // namespace

UringProbe ProbeIoUring() {
  UringProbe probe;
#if !defined(SQP_HAVE_IO_URING)
  probe.detail = "io_uring support compiled out (linux/io_uring.h was not "
                 "found at build time)";
  return probe;
#else
  if (ForcedOff()) {
    probe.detail = "disabled by SQP_FORCE_NO_URING";
    return probe;
  }
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = SysUringSetup(4, &params);
  if (fd < 0) {
    probe.detail = std::string("io_uring_setup: ") + std::strerror(errno);
    return probe;
  }
  ::close(fd);
  probe.available = true;
  struct utsname un;
  std::memset(&un, 0, sizeof(un));
  std::string kernel = ::uname(&un) == 0 ? un.release : "unknown";
  char feat[32];
  std::snprintf(feat, sizeof(feat), "0x%x", params.features);
  probe.detail = "kernel " + kernel + ", ring features " + feat;
  return probe;
#endif
}

#if defined(SQP_HAVE_IO_URING)

struct UringIoBackend::Impl {
  // ---- fixed configuration (set once in Create) ------------------------
  const storage::PageStore* store = nullptr;
  int disks = 0;
  UringBackendOptions options;
  bool metered = false;
  bool fd_mode = false;      // every disk handed out a raw fd -> real ring
  bool fixed_files = false;  // fds registered (IOSQE_FIXED_FILE)
  std::vector<int> raw_fds;
  int inflight_window = 1;  // per-disk runs allowed on the ring at once
  // Per-disk executor window: how many demand closures of one disk may
  // run at once (lazy threads, spawned only under concurrent demand).
  // This is the fd-less analogue of the ring's in-flight window — a
  // decorated store's merged runs overlap their charged service times
  // exactly as per-run READV SQEs overlap on the ring.
  int exec_window = 1;

  // ---- ring (reactor thread only after Create) -------------------------
  int ring_fd = -1;
  int event_fd = -1;
  void* sq_ptr = nullptr;
  size_t sq_bytes = 0;
  void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  size_t cq_bytes = 0;
  void* sqe_ptr = nullptr;
  size_t sqe_bytes = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  struct io_uring_sqe* sqes = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  struct io_uring_cqe* cq_cqes = nullptr;
  unsigned sq_entries = 0;
  unsigned cq_entries = 0;
  unsigned sq_tail_local = 0;  // our shadow of *sq_tail
  unsigned to_submit = 0;      // SQEs staged but not yet handed to the kernel
  bool eventfd_armed = false;  // a wakeup READ SQE is staged or in flight
  uint64_t eventfd_buf = 0;    // destination of the wakeup read

  // One merged run of a batch: a single vectored READ against the media.
  struct BatchCtx;
  struct RunCtx {
    BatchCtx* batch = nullptr;
    int disk = 0;
    uint64_t offset = 0;
    size_t len = 0;
    std::vector<struct iovec> iov;  // destination slices, offset order
    double submit_s = 0.0;
  };
  struct BatchCtx {
    int disk = 0;
    std::vector<storage::ReadRequest> requests;
    std::function<void(common::Status)> done;
    common::Status status;  // first run error wins
    size_t remaining = 0;   // runs not yet completed
  };

  // Reactor-private work state.
  std::vector<std::deque<RunCtx*>> run_queue;  // planned, not yet on the ring
  std::vector<int> inflight;                   // runs on the ring, per disk
  int inflight_total = 0;
  std::vector<BatchCtx*> finished;  // completed this reactor iteration

  // ---- intake: submitters -> reactor / executors (guarded by mu) -------
  struct BatchJob {
    std::vector<storage::ReadRequest> requests;
    std::function<void(common::Status)> done;
  };
  struct ClosureJob {
    std::function<void()> fn;
    std::function<bool()> cancel;  // speculative only; may be null
    // Whether finishing this closure counts as one demand job in
    // jobs_completed / sqp_io_jobs. Per-run slices of a batch do not
    // count (their batch counts once, when its last run lands).
    bool counts = true;
  };
  struct DiskIntake {
    // Per-disk lock: submitters, this disk's executor and the reactor
    // only ever contend with traffic for the same spindle. A single
    // backend-wide lock here measurably convoys the executors when all
    // disks' reads complete in the same instant (the common case on
    // throttled media, where every read charges the same service time).
    std::mutex mu;
    std::deque<BatchJob> batches;      // demand read batches (fd mode)
    std::deque<ClosureJob> demand;     // demand closures (executor)
    std::deque<ClosureJob> spec;       // speculative closures (executor)
    std::condition_variable work_cv;   // wakes the executor
    std::condition_variable space_cv;  // wakes blocked submitters
    int exec_count = 0;     // executors spawned for this disk
    int exec_idle = 0;      // executors parked in work_cv.wait
    int demand_active = 0;  // executors mid-demand-closure
    // Demand batches accepted for this disk and not yet finished —
    // queued, planned, or with runs in flight. Nonzero means the spindle
    // is demand-busy even though no queue shows the work.
    int ring_busy = 0;
  };
  std::deque<DiskIntake> intake;  // deque: stable addresses, no moves
  std::atomic<bool> stop{false};
  std::mutex exec_mu;  // guards `executors` (spawned lazily)

  // ---- stats (atomics: touched from every disk's threads) --------------
  std::atomic<uint64_t> completed{0};  // demand jobs: closures + batches
  std::atomic<uint64_t> backpressure{0};
  std::atomic<uint64_t> rejections{0};
  std::atomic<uint64_t> spec_issued{0};
  std::atomic<uint64_t> spec_completed{0};
  std::atomic<uint64_t> spec_cancelled{0};
  std::atomic<uint64_t> runs_submitted{0};
  std::atomic<uint64_t> runs_completed{0};
  std::atomic<uint64_t> runs_cancelled{0};

  // ---- instruments (null when unmetered) -------------------------------
  std::vector<obs::Counter*> m_jobs;
  std::vector<obs::Gauge*> m_inflight;
  std::vector<obs::Counter*> m_backpressure;
  std::vector<obs::Counter*> m_rejections;
  std::vector<obs::Counter*> m_spec_issued;
  std::vector<obs::Counter*> m_spec_cancelled;
  obs::Histogram* m_submit_batch = nullptr;
  obs::Histogram* m_completion_s = nullptr;

  // ---- threads ---------------------------------------------------------
  std::thread reactor;
  std::vector<std::thread> executors;  // grown lazily under mu

  ~Impl() { TearDownRing(); }

  // ---------------------------------------------------------------- ring

  common::Status SetupRing() {
    struct io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd = SysUringSetup(options.ring_entries, &p);
    if (ring_fd < 0) {
      return common::Status::Unavailable(std::string("io_uring_setup: ") +
                                         std::strerror(errno));
    }
    sq_entries = p.sq_entries;
    cq_entries = p.cq_entries;
    sq_bytes = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_bytes = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);
    sq_ptr = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (sq_ptr == MAP_FAILED) {
      sq_ptr = nullptr;
      return common::Status::Unavailable(std::string("mmap(sq ring): ") +
                                         std::strerror(errno));
    }
    if (single) {
      cq_ptr = sq_ptr;
    } else {
      cq_ptr = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ptr == MAP_FAILED) {
        cq_ptr = nullptr;
        return common::Status::Unavailable(std::string("mmap(cq ring): ") +
                                           std::strerror(errno));
      }
    }
    sqe_bytes = p.sq_entries * sizeof(struct io_uring_sqe);
    sqe_ptr = ::mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_ptr == MAP_FAILED) {
      sqe_ptr = nullptr;
      return common::Status::Unavailable(std::string("mmap(sqes): ") +
                                         std::strerror(errno));
    }
    char* sqb = static_cast<char*>(sq_ptr);
    sq_head = reinterpret_cast<unsigned*>(sqb + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(sqb + p.sq_off.tail);
    sq_mask = *reinterpret_cast<unsigned*>(sqb + p.sq_off.ring_mask);
    sq_array = reinterpret_cast<unsigned*>(sqb + p.sq_off.array);
    sqes = static_cast<struct io_uring_sqe*>(sqe_ptr);
    char* cqb = static_cast<char*>(cq_ptr);
    cq_head = reinterpret_cast<unsigned*>(cqb + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(cqb + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(cqb + p.cq_off.ring_mask);
    cq_cqes = reinterpret_cast<struct io_uring_cqe*>(cqb + p.cq_off.cqes);
    sq_tail_local = *sq_tail;

    event_fd = ::eventfd(0, EFD_CLOEXEC);  // blocking: the ring read waits
    if (event_fd < 0) {
      return common::Status::Unavailable(std::string("eventfd: ") +
                                         std::strerror(errno));
    }
    // Best effort; on failure SQEs just carry raw fds.
    fixed_files = SysUringRegister(ring_fd, IORING_REGISTER_FILES,
                                   raw_fds.data(),
                                   static_cast<unsigned>(raw_fds.size())) == 0;
    return common::Status::OK();
  }

  void TearDownRing() {
    if (sqe_ptr != nullptr) ::munmap(sqe_ptr, sqe_bytes);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_bytes);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_bytes);
    sqe_ptr = cq_ptr = sq_ptr = nullptr;
    if (ring_fd >= 0) ::close(ring_fd);
    if (event_fd >= 0) ::close(event_fd);
    ring_fd = event_fd = -1;
  }

  void WakeReactor() {
    const uint64_t one = 1;
    ssize_t n;
    do {
      n = ::write(event_fd, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  }

  unsigned SqSpace() const {
    return sq_entries - (sq_tail_local - LoadAcquire(sq_head));
  }

  struct io_uring_sqe* NextSqe() {
    const unsigned idx = sq_tail_local & sq_mask;
    sq_array[idx] = idx;
    sq_tail_local++;
    StoreRelease(sq_tail, sq_tail_local);
    to_submit++;
    struct io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    return sqe;
  }

  // ------------------------------------------------------------- reactor

  void ReactorLoop() {
    tls_uring_backend = this;
    for (;;) {
      bool stopping = false;
      std::vector<std::pair<int, BatchJob>> fresh;
      stopping = stop.load(std::memory_order_acquire);
      for (int d = 0; d < disks; ++d) {
        DiskIntake& q = intake[static_cast<size_t>(d)];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.batches.empty()) continue;
        while (!q.batches.empty()) {
          fresh.emplace_back(d, std::move(q.batches.front()));
          q.batches.pop_front();
        }
        q.space_cv.notify_all();
      }
      for (auto& [d, job] : fresh) PlanBatch(d, std::move(job));

      StageSqes();
      if (stopping && inflight_total == 0 && finished.empty() &&
          RunQueuesEmpty() && fresh.empty()) {
        // One more intake check under the locks: a batch may have
        // slipped in between the drain above and stop being observed
        // (SubmitBatchRead rejects after stop, so no later ones exist).
        bool drained = true;
        for (DiskIntake& q : intake) {
          std::lock_guard<std::mutex> lock(q.mu);
          drained &= q.batches.empty();
        }
        if (drained) break;
        continue;
      }

      unsigned reaped = ReapCqes();
      if (reaped == 0 && finished.empty()) {
        Enter(/*min_complete=*/1);  // submits staged SQEs, then blocks
        ReapCqes();
      } else if (to_submit > 0) {
        Enter(/*min_complete=*/0);
      }
      FinishBatches();
    }
  }

  bool RunQueuesEmpty() const {
    for (const auto& q : run_queue) {
      if (!q.empty()) return false;
    }
    return true;
  }

  void PlanBatch(int disk, BatchJob job) {
    auto* bc = new BatchCtx;
    bc->disk = disk;
    bc->requests = std::move(job.requests);
    bc->done = std::move(job.done);
    std::vector<storage::ReadRun> runs = storage::PlanReadRuns(bc->requests);
    bc->remaining = runs.size();
    if (runs.empty()) {
      finished.push_back(bc);
      return;
    }
    for (const storage::ReadRun& run : runs) {
      auto* rc = new RunCtx;
      rc->batch = bc;
      rc->disk = run.disk;
      rc->offset = run.offset;
      rc->len = run.len;
      rc->iov.reserve(run.indices.size());
      for (size_t i : run.indices) {
        const storage::ReadRequest& r = bc->requests[i];
        rc->iov.push_back({r.buf, r.len});
      }
      run_queue[static_cast<size_t>(run.disk)].push_back(rc);
    }
  }

  void StageSqes() {
    if (!eventfd_armed && SqSpace() > 0) {
      struct io_uring_sqe* sqe = NextSqe();
      sqe->opcode = IORING_OP_READ;
      sqe->fd = event_fd;
      sqe->addr = reinterpret_cast<uint64_t>(&eventfd_buf);
      sqe->len = sizeof(eventfd_buf);
      sqe->user_data = 0;  // wakeup token; run ctx pointers are never null
      eventfd_armed = true;
    }
    // Round-robin across disks so one deep queue cannot starve siblings
    // of ring slots.
    bool progress = true;
    while (progress) {
      progress = false;
      for (int d = 0; d < disks; ++d) {
        auto& queue = run_queue[static_cast<size_t>(d)];
        if (queue.empty()) continue;
        if (inflight[static_cast<size_t>(d)] >= inflight_window) continue;
        if (SqSpace() == 0) return;
        RunCtx* rc = queue.front();
        queue.pop_front();
        struct io_uring_sqe* sqe = NextSqe();
        sqe->opcode = IORING_OP_READV;
        if (fixed_files) {
          sqe->fd = rc->disk;
          sqe->flags = IOSQE_FIXED_FILE;
        } else {
          sqe->fd = raw_fds[static_cast<size_t>(rc->disk)];
        }
        sqe->addr = reinterpret_cast<uint64_t>(rc->iov.data());
        sqe->len = static_cast<unsigned>(rc->iov.size());
        sqe->off = rc->offset;
        sqe->user_data = reinterpret_cast<uint64_t>(rc);
        if (metered) rc->submit_s = NowSeconds();
        inflight[static_cast<size_t>(d)]++;
        inflight_total++;
        runs_submitted.fetch_add(1, std::memory_order_relaxed);
        if (m_inflight[static_cast<size_t>(d)] != nullptr) {
          m_inflight[static_cast<size_t>(d)]->Add(1);
        }
        progress = true;
      }
    }
  }

  void Enter(unsigned min_complete) {
    for (;;) {
      const unsigned flags = min_complete > 0 ? IORING_ENTER_GETEVENTS : 0u;
      const int ret = SysUringEnter(ring_fd, to_submit, min_complete, flags);
      if (ret < 0) {
        if (errno == EINTR) continue;
        // EBUSY/EAGAIN: completion-side pressure — reap first, retry later.
        if (errno == EBUSY || errno == EAGAIN) return;
        SQP_CHECK(false && "io_uring_enter failed");
      }
      if (ret > 0) {
        if (m_submit_batch != nullptr) {
          m_submit_batch->Observe(static_cast<double>(ret));
        }
        to_submit -= static_cast<unsigned>(ret);
      }
      return;
    }
  }

  unsigned ReapCqes() {
    unsigned reaped = 0;
    unsigned head = *cq_head;  // only this thread advances the head
    for (;;) {
      if (head == LoadAcquire(cq_tail)) break;
      const struct io_uring_cqe* cqe = &cq_cqes[head & cq_mask];
      HandleCqe(cqe);
      head++;
      StoreRelease(cq_head, head);
      reaped++;
    }
    return reaped;
  }

  void HandleCqe(const struct io_uring_cqe* cqe) {
    if (cqe->user_data == 0) {
      eventfd_armed = false;  // re-armed by the next StageSqes
      return;
    }
    RunCtx* rc = reinterpret_cast<RunCtx*>(cqe->user_data);
    const int d = rc->disk;
    inflight[static_cast<size_t>(d)]--;
    inflight_total--;
    if (m_inflight[static_cast<size_t>(d)] != nullptr) {
      m_inflight[static_cast<size_t>(d)]->Add(-1);
    }
    if (m_completion_s != nullptr) {
      m_completion_s->Observe(NowSeconds() - rc->submit_s);
    }
    runs_completed.fetch_add(1, std::memory_order_relaxed);
    common::Status st;
    const int res = cqe->res;
    if (res < 0) {
      st = common::Status::Internal(
          "io_uring readv on disk " + std::to_string(d) + " at offset " +
          std::to_string(rc->offset) + ": " + std::strerror(-res));
    } else if (static_cast<size_t>(res) != rc->len) {
      // Same shape as FilePageStore::ReadAt hitting EOF mid-read.
      st = common::Status::OutOfRange(
          "read past end of " + storage::FilePageStore::DiskFileName(d) +
          " (offset " + std::to_string(rc->offset) + " + " +
          std::to_string(rc->len) + " bytes; got " + std::to_string(res) +
          ")");
    }
    if (!st.ok() && rc->batch->status.ok()) rc->batch->status = st;
    if (--rc->batch->remaining == 0) finished.push_back(rc->batch);
    delete rc;
  }

  void FinishBatches() {
    if (finished.empty()) return;
    std::vector<BatchCtx*> done_now;
    done_now.swap(finished);
    for (BatchCtx* bc : done_now) {
      bc->done(bc->status);  // no locks held: the callback may resubmit
    }
    for (BatchCtx* bc : done_now) {
      DiskIntake& q = intake[static_cast<size_t>(bc->disk)];
      {
        std::lock_guard<std::mutex> lock(q.mu);
        q.ring_busy--;
        // The spindle may have gone demand-idle: queued speculation is
        // eligible now.
        if (q.ring_busy == 0 && !q.spec.empty()) q.work_cv.notify_all();
      }
      completed.fetch_add(1, std::memory_order_relaxed);
      if (m_jobs[static_cast<size_t>(bc->disk)] != nullptr) {
        m_jobs[static_cast<size_t>(bc->disk)]->Add(1);
      }
    }
    for (BatchCtx* bc : done_now) delete bc;
  }

  // ----------------------------------------------------------- executors

  // Called with the disk's intake lock held. Spawns the disk's first
  // executor, and further ones (up to exec_window) only when work is
  // queued and every existing executor is busy — the thread count grows
  // to the per-disk demand concurrency actually observed, never past the
  // window.
  void EnsureExecutorLocked(int disk) {
    DiskIntake& q = intake[static_cast<size_t>(disk)];
    if (q.exec_count > 0 && (q.exec_idle > 0 || q.exec_count >= exec_window)) {
      return;
    }
    q.exec_count++;
    std::lock_guard<std::mutex> lock(exec_mu);
    executors.emplace_back([this, disk] { ExecutorLoop(disk); });
  }

  void ExecutorLoop(int disk) {
    tls_uring_backend = this;
    DiskIntake& q = intake[static_cast<size_t>(disk)];
    std::unique_lock<std::mutex> lock(q.mu);
    for (;;) {
      q.exec_idle++;
      q.work_cv.wait(lock, [&] {
        return stop.load(std::memory_order_acquire) || !q.demand.empty() ||
               (!q.spec.empty() && q.demand.empty() &&
                q.demand_active == 0 && q.ring_busy == 0);
      });
      q.exec_idle--;
      if (stop.load(std::memory_order_acquire) && !q.spec.empty()) {
        // Shutdown cancels queued speculation wholesale instead of paying
        // for it.
        spec_cancelled.fetch_add(q.spec.size(), std::memory_order_relaxed);
        if (m_spec_cancelled[static_cast<size_t>(disk)] != nullptr) {
          m_spec_cancelled[static_cast<size_t>(disk)]->Add(q.spec.size());
        }
        q.spec.clear();
      }
      if (!q.demand.empty()) {
        ClosureJob job = std::move(q.demand.front());
        q.demand.pop_front();
        q.demand_active++;
        q.space_cv.notify_all();
        lock.unlock();
        job.fn();
        if (job.counts) {
          completed.fetch_add(1, std::memory_order_relaxed);
          if (m_jobs[static_cast<size_t>(disk)] != nullptr) {
            m_jobs[static_cast<size_t>(disk)]->Add(1);
          }
        }
        lock.lock();
        q.demand_active--;
        continue;
      }
      if (stop.load(std::memory_order_acquire)) return;
      if (!q.spec.empty()) {
        ClosureJob job = std::move(q.spec.front());
        q.spec.pop_front();
        lock.unlock();
        // Cancel predicate runs off the lock, at the moment the job would
        // start — the two-class contract.
        const bool skip = job.cancel != nullptr && job.cancel();
        if (!skip) job.fn();
        if (skip) {
          spec_cancelled.fetch_add(1, std::memory_order_relaxed);
          if (m_spec_cancelled[static_cast<size_t>(disk)] != nullptr) {
            m_spec_cancelled[static_cast<size_t>(disk)]->Add(1);
          }
        } else {
          spec_completed.fetch_add(1, std::memory_order_relaxed);
        }
        lock.lock();
      }
    }
  }

  void EnqueueDemandClosure(int disk, std::function<void()> fn,
                            bool counts = true) {
    DiskIntake& q = intake[static_cast<size_t>(disk)];
    std::unique_lock<std::mutex> lock(q.mu);
    SQP_CHECK(!stop.load(std::memory_order_acquire));
    while (q.demand.size() >= options.max_queue_depth) {
      backpressure.fetch_add(1, std::memory_order_relaxed);
      if (m_backpressure[static_cast<size_t>(disk)] != nullptr) {
        m_backpressure[static_cast<size_t>(disk)]->Add(1);
      }
      q.space_cv.wait(lock);
    }
    q.demand.push_back(ClosureJob{std::move(fn), nullptr, counts});
    EnsureExecutorLocked(disk);
    q.work_cv.notify_all();
  }
};

common::Result<std::unique_ptr<UringIoBackend>> UringIoBackend::Create(
    const storage::PageStore* store, obs::MetricsRegistry* metrics,
    const UringBackendOptions& options) {
  SQP_CHECK(store != nullptr);
  SQP_CHECK(options.ring_entries >= 2);
  SQP_CHECK(options.max_inflight_per_disk >= 1);
  SQP_CHECK(options.max_queue_depth >= 1);
  SQP_CHECK(options.max_speculative_depth >= 1);
  UringProbe probe = ProbeIoUring();
  if (!probe.available) {
    return common::Status::Unavailable("io_uring unavailable: " +
                                       probe.detail);
  }
  const int disks = store->num_disks();
  if (disks < 1) {
    return common::Status::InvalidArgument("store has no disks");
  }

  auto impl = std::make_unique<Impl>();
  impl->store = store;
  impl->disks = disks;
  impl->options = options;
  impl->metered = metrics != nullptr;
  impl->raw_fds.resize(static_cast<size_t>(disks), -1);
  impl->fd_mode = true;
  for (int d = 0; d < disks; ++d) {
    impl->raw_fds[static_cast<size_t>(d)] = store->RawFd(d);
    if (impl->raw_fds[static_cast<size_t>(d)] < 0) impl->fd_mode = false;
  }
  if (impl->fd_mode) {
    common::Status ring = impl->SetupRing();
    if (!ring.ok()) return ring;
    // The in-flight bound is really a CQ bound: every disk at its full
    // window plus the wakeup read must fit the completion queue.
    const int cq_share =
        static_cast<int>((impl->cq_entries - 1) / static_cast<unsigned>(disks));
    impl->inflight_window =
        std::max(1, std::min(options.max_inflight_per_disk, cq_share));
  }
  impl->run_queue.resize(static_cast<size_t>(disks));
  impl->inflight.assign(static_cast<size_t>(disks), 0);
  // Executors honor the same per-disk window as the ring, capped so a
  // decorated store cannot fan a pathological batch into dozens of lazy
  // threads per disk.
  impl->exec_window = std::max(1, std::min(options.max_inflight_per_disk, 8));
  for (int d = 0; d < disks; ++d) impl->intake.emplace_back();

  impl->m_jobs.assign(static_cast<size_t>(disks), nullptr);
  impl->m_inflight.assign(static_cast<size_t>(disks), nullptr);
  impl->m_backpressure.assign(static_cast<size_t>(disks), nullptr);
  impl->m_rejections.assign(static_cast<size_t>(disks), nullptr);
  impl->m_spec_issued.assign(static_cast<size_t>(disks), nullptr);
  impl->m_spec_cancelled.assign(static_cast<size_t>(disks), nullptr);
  if (metrics != nullptr) {
    for (int d = 0; d < disks; ++d) {
      const auto i = static_cast<size_t>(d);
      impl->m_jobs[i] =
          metrics->GetCounter(obs::WithLabel("sqp_io_jobs_total", "disk", d));
      impl->m_inflight[i] =
          metrics->GetGauge(obs::WithLabel("sqp_io_inflight", "disk", d));
      impl->m_backpressure[i] = metrics->GetCounter(
          obs::WithLabel("sqp_io_backpressure_waits_total", "disk", d));
      impl->m_rejections[i] = metrics->GetCounter(
          obs::WithLabel("sqp_io_queue_rejections_total", "disk", d));
      impl->m_spec_issued[i] = metrics->GetCounter(
          obs::WithLabel("sqp_io_speculative_issued_total", "disk", d));
      impl->m_spec_cancelled[i] = metrics->GetCounter(
          obs::WithLabel("sqp_io_speculative_cancelled_total", "disk", d));
    }
    impl->m_submit_batch =
        metrics->GetHistogram("sqp_uring_submit_batch_size",
                              obs::MetricsRegistry::PowerOfTwoBuckets(10));
    impl->m_completion_s =
        metrics->GetHistogram("sqp_uring_completion_seconds",
                              obs::MetricsRegistry::LatencyBuckets());
  }

  auto backend =
      std::unique_ptr<UringIoBackend>(new UringIoBackend(std::move(impl)));
  Impl* im = backend->impl_.get();
  if (im->fd_mode) {
    im->reactor = std::thread([im] { im->ReactorLoop(); });
  }
  return backend;
}

UringIoBackend::UringIoBackend(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

UringIoBackend::~UringIoBackend() {
  Impl* im = impl_.get();
  if (im == nullptr) return;
  im->stop.store(true, std::memory_order_release);
  for (Impl::DiskIntake& q : im->intake) {
    std::lock_guard<std::mutex> lock(q.mu);
    q.work_cv.notify_all();
    q.space_cv.notify_all();
  }
  if (im->fd_mode) im->WakeReactor();
  if (im->reactor.joinable()) im->reactor.join();
  std::vector<std::thread> executors;
  {
    std::lock_guard<std::mutex> lock(im->exec_mu);
    executors.swap(im->executors);
  }
  for (std::thread& t : executors) t.join();
}

int UringIoBackend::num_disks() const { return impl_->disks; }

void UringIoBackend::Submit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < impl_->disks);
  SQP_DCHECK(!OnWorkerThread());
  impl_->EnqueueDemandClosure(disk, std::move(job));
}

bool UringIoBackend::TrySubmit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < impl_->disks);
  Impl* im = impl_.get();
  Impl::DiskIntake& q = im->intake[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (im->stop.load(std::memory_order_acquire) ||
      q.demand.size() >= im->options.max_queue_depth) {
    im->rejections.fetch_add(1, std::memory_order_relaxed);
    if (im->m_rejections[static_cast<size_t>(disk)] != nullptr) {
      im->m_rejections[static_cast<size_t>(disk)]->Add(1);
    }
    return false;
  }
  q.demand.push_back(Impl::ClosureJob{std::move(job), nullptr});
  im->EnsureExecutorLocked(disk);
  q.work_cv.notify_all();
  return true;
}

bool UringIoBackend::SubmitSpeculative(int disk, std::function<void()> job,
                                       std::function<bool()> cancel) {
  SQP_CHECK(disk >= 0 && disk < impl_->disks);
  Impl* im = impl_.get();
  Impl::DiskIntake& q = im->intake[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  if (im->stop.load(std::memory_order_acquire) ||
      q.spec.size() >= im->options.max_speculative_depth) {
    im->rejections.fetch_add(1, std::memory_order_relaxed);
    if (im->m_rejections[static_cast<size_t>(disk)] != nullptr) {
      im->m_rejections[static_cast<size_t>(disk)]->Add(1);
    }
    return false;
  }
  im->spec_issued.fetch_add(1, std::memory_order_relaxed);
  if (im->m_spec_issued[static_cast<size_t>(disk)] != nullptr) {
    im->m_spec_issued[static_cast<size_t>(disk)]->Add(1);
  }
  q.spec.push_back(Impl::ClosureJob{std::move(job), std::move(cancel)});
  im->EnsureExecutorLocked(disk);
  q.work_cv.notify_all();
  return true;
}

void UringIoBackend::SubmitBatchRead(
    int disk, std::vector<storage::ReadRequest> requests,
    std::function<void(common::Status)> done) {
  Impl* im = impl_.get();
  SQP_CHECK(disk >= 0 && disk < im->disks);
  SQP_DCHECK(!OnWorkerThread());
  if (!im->fd_mode) {
    // Decorated or in-memory store: the batch's merged runs (the same
    // plan the ring would submit as READV SQEs) each become one executor
    // job, so a disk keeps up to the executor window of media accesses in
    // flight — a batch whose runs would serialize their charged service
    // times inside one ReadPages call overlaps them instead, exactly as
    // per-run SQEs overlap on the ring. Throttling and fault injection
    // stay below the backend with per-access threads-backend semantics.
    // The batch counts as one demand job (when its last run lands); each
    // run counts once in the read-conservation identity.
    const std::vector<storage::ReadRun> runs = storage::PlanReadRuns(
        std::span<const storage::ReadRequest>(requests.data(),
                                              requests.size()));
    if (runs.empty()) {
      done(common::Status::OK());
      return;
    }
    struct FdlessBatch {
      std::vector<storage::ReadRequest> requests;
      std::function<void(common::Status)> done;
      std::mutex mu;
      common::Status status;  // first run error wins
      size_t remaining = 0;
    };
    auto bc = std::make_shared<FdlessBatch>();
    bc->requests = std::move(requests);
    bc->done = std::move(done);
    bc->remaining = runs.size();
    im->runs_submitted.fetch_add(runs.size(), std::memory_order_relaxed);
    for (const storage::ReadRun& run : runs) {
      std::vector<storage::ReadRequest> slice;
      slice.reserve(run.indices.size());
      for (size_t idx : run.indices) slice.push_back(bc->requests[idx]);
      im->EnqueueDemandClosure(
          disk,
          [im, disk, bc, slice = std::move(slice)] {
            const common::Status st =
                im->store->ReadPages(std::span<const storage::ReadRequest>(
                    slice.data(), slice.size()));
            im->runs_completed.fetch_add(1, std::memory_order_relaxed);
            bool last = false;
            {
              std::lock_guard<std::mutex> lock(bc->mu);
              if (!st.ok() && bc->status.ok()) bc->status = st;
              last = --bc->remaining == 0;
            }
            if (!last) return;
            im->completed.fetch_add(1, std::memory_order_relaxed);
            if (im->m_jobs[static_cast<size_t>(disk)] != nullptr) {
              im->m_jobs[static_cast<size_t>(disk)]->Add(1);
            }
            bc->done(bc->status);
          },
          /*counts=*/false);
    }
    return;
  }
  {
    Impl::DiskIntake& q = im->intake[static_cast<size_t>(disk)];
    std::unique_lock<std::mutex> lock(q.mu);
    SQP_CHECK(!im->stop.load(std::memory_order_acquire));
    while (q.batches.size() >= im->options.max_queue_depth) {
      im->backpressure.fetch_add(1, std::memory_order_relaxed);
      if (im->m_backpressure[static_cast<size_t>(disk)] != nullptr) {
        im->m_backpressure[static_cast<size_t>(disk)]->Add(1);
      }
      q.space_cv.wait(lock);
    }
    q.batches.push_back(Impl::BatchJob{std::move(requests), std::move(done)});
    q.ring_busy++;
  }
  im->WakeReactor();
}

uint64_t UringIoBackend::jobs_completed() const {
  return impl_->completed.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::backpressure_waits() const {
  return impl_->backpressure.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::queue_rejections() const {
  return impl_->rejections.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::speculative_issued() const {
  return impl_->spec_issued.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::speculative_completed() const {
  return impl_->spec_completed.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::speculative_cancelled() const {
  return impl_->spec_cancelled.load(std::memory_order_relaxed);
}

size_t UringIoBackend::demand_queue_depth(int disk) const {
  SQP_CHECK(disk >= 0 && disk < impl_->disks);
  Impl::DiskIntake& q = impl_->intake[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  return q.batches.size() + q.demand.size();
}

bool UringIoBackend::demand_busy(int disk) const {
  SQP_CHECK(disk >= 0 && disk < impl_->disks);
  Impl::DiskIntake& q = impl_->intake[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  return q.ring_busy > 0 || !q.demand.empty() || q.demand_active > 0;
}

bool UringIoBackend::OnWorkerThread() const {
  return tls_uring_backend == impl_.get();
}

bool UringIoBackend::using_raw_fds() const { return impl_->fd_mode; }

uint64_t UringIoBackend::reads_submitted() const {
  return impl_->runs_submitted.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::reads_completed() const {
  return impl_->runs_completed.load(std::memory_order_relaxed);
}

uint64_t UringIoBackend::reads_cancelled() const {
  return impl_->runs_cancelled.load(std::memory_order_relaxed);
}

#else  // !SQP_HAVE_IO_URING — stubs: Create never succeeds, nothing runs.

struct UringIoBackend::Impl {};

common::Result<std::unique_ptr<UringIoBackend>> UringIoBackend::Create(
    const storage::PageStore* store, obs::MetricsRegistry* metrics,
    const UringBackendOptions& options) {
  (void)store;
  (void)metrics;
  (void)options;
  return common::Status::Unavailable("io_uring unavailable: " +
                                     ProbeIoUring().detail);
}

UringIoBackend::UringIoBackend(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
UringIoBackend::~UringIoBackend() = default;

int UringIoBackend::num_disks() const { return 0; }
void UringIoBackend::Submit(int, std::function<void()>) {
  SQP_CHECK(false && "io_uring compiled out");
}
bool UringIoBackend::TrySubmit(int, std::function<void()>) { return false; }
bool UringIoBackend::SubmitSpeculative(int, std::function<void()>,
                                       std::function<bool()>) {
  return false;
}
void UringIoBackend::SubmitBatchRead(int, std::vector<storage::ReadRequest>,
                                     std::function<void(common::Status)>) {
  SQP_CHECK(false && "io_uring compiled out");
}
uint64_t UringIoBackend::jobs_completed() const { return 0; }
uint64_t UringIoBackend::backpressure_waits() const { return 0; }
uint64_t UringIoBackend::queue_rejections() const { return 0; }
uint64_t UringIoBackend::speculative_issued() const { return 0; }
uint64_t UringIoBackend::speculative_completed() const { return 0; }
uint64_t UringIoBackend::speculative_cancelled() const { return 0; }
size_t UringIoBackend::demand_queue_depth(int) const { return 0; }
bool UringIoBackend::demand_busy(int) const { return false; }
bool UringIoBackend::OnWorkerThread() const { return false; }
bool UringIoBackend::using_raw_fds() const { return false; }
uint64_t UringIoBackend::reads_submitted() const { return 0; }
uint64_t UringIoBackend::reads_completed() const { return 0; }
uint64_t UringIoBackend::reads_cancelled() const { return 0; }

#endif  // SQP_HAVE_IO_URING

}  // namespace sqp::exec
