#include "exec/prefetch_controller.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace sqp::exec {

AdaptivePrefetchController::AdaptivePrefetchController(
    const Options& options, std::function<Signals()> sampler)
    : options_(options), sampler_(std::move(sampler)), budget_(1) {
  SQP_CHECK(options_.max_budget >= 1);
  SQP_CHECK(options_.refresh_interval >= 1);
  SQP_CHECK(sampler_ != nullptr);
}

int AdaptivePrefetchController::Consult() {
  const uint64_t n = consults_.fetch_add(1, std::memory_order_relaxed);
  if (n % options_.refresh_interval == 0) Refresh();
  return budget_.load(std::memory_order_relaxed);
}

void AdaptivePrefetchController::Refresh() {
  std::unique_lock<std::mutex> lock(refresh_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another thread is already refreshing
  const Signals now = sampler_();
  const uint64_t d_hits = now.hits - last_.hits;
  const uint64_t d_wasted = now.wasted - last_.wasted;
  const uint64_t d_evictions = now.evictions - last_.evictions;
  const uint64_t d_insertions = now.insertions - last_.insertions;
  last_ = now;

  const uint64_t resolved = d_hits + d_wasted;
  int b = budget_.load(std::memory_order_relaxed);
  if (resolved < options_.min_resolved) {
    // Too little evidence to judge. A zero budget generates no evidence
    // at all, so after a few idle windows probe again with 1.
    if (b == 0 && ++idle_windows_ >= options_.reprobe_windows) {
      idle_windows_ = 0;
      budget_.store(1, std::memory_order_relaxed);
    }
    return;
  }
  idle_windows_ = 0;
  const double rate =
      static_cast<double>(d_hits) / static_cast<double>(resolved);
  const double pressure =
      d_insertions == 0 ? 0.0
                        : static_cast<double>(d_evictions) /
                              static_cast<double>(d_insertions);
  if (rate >= options_.grow_rate) {
    b = std::min(options_.max_budget, std::max(1, b * 2));
  } else if (rate < options_.shrink_rate ||
             pressure >= options_.pressure_limit) {
    b = b / 2;
  }
  // Rates in [shrink_rate, grow_rate) under low pressure hold steady.
  budget_.store(b, std::memory_order_relaxed);
}

}  // namespace sqp::exec
