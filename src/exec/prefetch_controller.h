// Feedback controller for the engine's speculative prefetch budget.
//
// PR 5's static EngineOptions::prefetch_budget knob had the failure mode
// the bench immediately recorded: a budget that helps a lone query on
// idle spindles (CRSS hints fill the disks the activation batch left
// idle) *steals demand bandwidth* once concurrent queries keep every
// spindle busy — each speculative read still costs a full media service
// time. Whether look-ahead pays is a property of the current workload,
// not of the configuration — LAANN's thesis (PAPERS.md, "I/O-Aware
// Look-Ahead Search") — so the budget must be measured, not declared.
//
// This controller turns the knob into a signal recomputed from the
// stack's own accounting:
//
//   * windowed prefetch hit rate — of the speculative frames *resolved*
//     since the last refresh (claimed by a demand access, or wasted),
//     what fraction were claimed? The cache's speculative-origin marks
//     (page_cache.h) make this exact.
//   * cache pressure — evictions per insertion over the window. A cache
//     churning near 1.0 evicts prefetched frames before anyone claims
//     them, so speculation must prove itself harder.
//   * per-disk demand queue depth — not sampled here but enforced at
//     issue time: the engine only offers speculation to disks whose
//     demand queue is empty (DiskIoPool::demand_queue_depth), the
//     paper's D-independent-queue model saying demand work wins.
//
// Adjustment is AIMD-flavored multiplicative probing between 0 and
// max_budget: a window whose resolved speculation mostly paid doubles
// the budget, one that mostly missed halves it, and a budget driven to
// zero re-probes with 1 after a few idle windows so a workload shift
// (the concurrent burst ended) can be discovered. Starting at 1 means a
// saturated system never pays more than a trickle of speculation before
// the controller sees the evidence.
//
// Consult() is the per-step entry point: a relaxed atomic read plus,
// every refresh_interval-th call, one sampling pass under a try-lock —
// query threads never serialize on the controller.

#ifndef SQP_EXEC_PREFETCH_CONTROLLER_H_
#define SQP_EXEC_PREFETCH_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

namespace sqp::exec {

class AdaptivePrefetchController {
 public:
  // Cumulative totals the controller differences between refreshes. The
  // sampler gathers them from the live cache/pool counters.
  struct Signals {
    uint64_t issued = 0;      // speculative jobs accepted by the pool
    uint64_t hits = 0;        // speculative frames claimed by demand
    uint64_t wasted = 0;      // speculative work resolved unclaimed
    uint64_t evictions = 0;   // cache evictions (all traffic)
    uint64_t insertions = 0;  // cache insertions (all traffic)
  };

  struct Options {
    // Budget ceiling; the engine uses the disk count (at most one
    // speculative read in flight per spindle beyond demand work).
    int max_budget = 8;
    // Consults between samplings. Small enough to react within a few
    // dozen queries, large enough that sampling cost vanishes.
    uint64_t refresh_interval = 256;
    // Resolved speculations needed in a window before adjusting; below
    // this the evidence is noise and the budget holds.
    uint64_t min_resolved = 8;
    // Idle windows (no evidence) after which a zero budget re-probes
    // with 1, so a workload shift can be discovered.
    int reprobe_windows = 4;
    // Hit-rate thresholds: >= grow doubles, < shrink halves.
    double grow_rate = 0.5;
    double shrink_rate = 0.2;
    // With evictions/insertions at or above this, a merely middling hit
    // rate (< grow_rate) also shrinks: a churning cache evicts
    // speculative frames before they can be claimed.
    double pressure_limit = 0.95;
  };

  // `sampler` is called under the controller's refresh lock, from
  // whichever query thread triggers the refresh; it must be safe to call
  // concurrently with the rest of the engine (the cache/pool accessors
  // are).
  AdaptivePrefetchController(const Options& options,
                             std::function<Signals()> sampler);

  // Current budget, refreshing it every refresh_interval-th call. Called
  // once per traversal step; thread-safe, never blocks on a concurrent
  // refresh.
  int Consult();

  // Current budget without advancing the refresh clock (tests, stats).
  int budget() const { return budget_.load(std::memory_order_relaxed); }

 private:
  void Refresh();

  const Options options_;
  const std::function<Signals()> sampler_;
  std::atomic<uint64_t> consults_{0};
  std::atomic<int> budget_;
  std::mutex refresh_mu_;
  Signals last_;        // guarded by refresh_mu_
  int idle_windows_ = 0;  // guarded by refresh_mu_
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_PREFETCH_CONTROLLER_H_
