// Page-id-level read access to a persisted index image.
//
// storage::PageStore speaks (disk, offset, len); the execution engine
// speaks PageIds. StoredIndexReader bridges the two using the on-disk
// directory (storage::ReadIndexLayout): it resolves each PageId to its
// primary record's location, groups batch reads per disk, and lets the
// store merge offset-adjacent records into single preads. Every record is
// checksum-verified and decoded on the way in, so a damaged page surfaces
// as a Status at query time, never as a wrong answer.
//
// The read path is hardened against failing media (docs/FAULTS.md):
// transient errors (Status::Unavailable) and checksum corruption — which
// in-flight damage such as a torn read or bus bit flip also produces —
// are retried per record with capped exponential backoff, re-verifying
// the checksum on every attempt. Only a record that stays bad through
// RetryPolicy::max_attempts (or fails with a permanent error class)
// surfaces to the caller, carrying the attempt count in its message.

#ifndef SQP_EXEC_STORED_INDEX_H_
#define SQP_EXEC_STORED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/flat_node.h"
#include "obs/metrics.h"
#include "rstar/node.h"
#include "rstar/types.h"
#include "storage/index_io.h"
#include "storage/page_store.h"

namespace sqp::exec {

// How hard the reader fights transient faults before giving up on a
// record. The default retries three times over ~a few milliseconds —
// enough to ride out intermittent EIO and in-flight corruption without
// stalling a query noticeably when the fault is permanent after all.
struct RetryPolicy {
  int max_attempts = 4;              // total attempts per record; 1 = no retry
  double initial_backoff_s = 0.0002; // sleep before the first re-attempt
  double backoff_multiplier = 4.0;
  double max_backoff_s = 0.01;       // backoff cap (the "capped" part)
};

// Fault accounting for one read call (and, summed, for one query).
struct IoFaultCounters {
  uint64_t faults = 0;   // read/decode attempts that failed
  uint64_t retries = 0;  // attempts re-issued after a retryable failure

  void Add(const IoFaultCounters& o) {
    faults += o.faults;
    retries += o.retries;
  }
};

// Process-lifetime totals of the reader, for aggregate reporting.
struct ReaderFaultTotals {
  uint64_t faults = 0;          // failed attempts observed
  uint64_t retries = 0;         // re-attempts issued
  uint64_t failed_records = 0;  // records that exhausted every attempt
};

// True for the error classes a retry can heal: transient unavailability
// and checksum corruption. Everything else (truncated file, bad argument,
// permanent media error) fails immediately.
bool IsRetryableReadError(const common::Status& s);

// A batched read split into its plan and its finish. PlanBatchRead sizes
// one contiguous buffer and lays one ReadRequest per record into it; the
// caller then executes the requests however it likes — the reader's own
// ReadPages call, or a completion-driven I/O backend — and finishes each
// record with FinishNodeRecord / FinishFlatRecord, which carry the exact
// decode / fault-count / retry-fallback semantics of ReadNodesAt.
//
// `requests[i].buf` points into `bytes`, so a plan may be MOVED but never
// copied while the requests are outstanding.
struct ReadBatchPlan {
  std::vector<rstar::PageId> ids;
  std::vector<storage::PageLocation> locs;
  std::vector<uint8_t> bytes;
  std::vector<storage::ReadRequest> requests;  // one per record, into bytes
  // PlanReadRuns(requests).size(): physical media accesses the batch costs
  // after offset-adjacent records merge. The reader's media-read totals
  // count the batch at plan time (a plan is always executed).
  size_t planned_media_reads = 0;
};

class StoredIndexReader {
 public:
  // Reads and validates the store's layout. `store` must outlive the
  // reader and its contents must not change while the reader is in use.
  static common::Result<std::unique_ptr<StoredIndexReader>> Open(
      const storage::PageStore* store, const RetryPolicy& retry = {});

  // Builds a reader over a caller-supplied layout instead of the store's
  // on-disk directory — the mutable-index path, where the authoritative
  // page map is a storage::MutableIndex snapshot, not the base image's
  // superblocks. The reader's own layout() is a point-in-time copy used
  // for num_disks/config only; per-query resolution goes through the
  // ...At() entry points below with locations from the query's snapshot.
  // Unlike Open(), the store's contents MAY grow while the reader is in
  // use (copy-on-write appends); bytes under any location handed to the
  // ...At() calls must stay immutable, which MutableIndex guarantees.
  static common::Result<std::unique_ptr<StoredIndexReader>> OpenWithLayout(
      const storage::PageStore* store, storage::IndexLayout layout,
      const RetryPolicy& retry = {});

  const storage::IndexLayout& layout() const { return layout_; }
  int num_disks() const { return layout_.decluster.num_disks; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Primary record location of `id`; InvalidArgument if not live.
  common::Result<storage::PageLocation> LocationOf(rstar::PageId id) const;

  // Reads and decodes one node record, retrying transient faults.
  common::Result<rstar::Node> ReadNode(
      rstar::PageId id, IoFaultCounters* counters = nullptr) const;

  // Reads and decodes a batch of node records, appended to `out` in `ids`
  // order. The fault-free fast path issues one PageStore::ReadPages call,
  // so records on the same disk that are adjacent in the file cost a
  // single pread; records that fail the batched read or its per-record
  // decode fall back to individual retried reads, so one bad page never
  // forces the whole batch to be re-read. On error, `out`'s added
  // contents are unspecified. Safe to call from several threads
  // concurrently. `counters`, when non-null, accumulates this call's
  // fault activity (the per-query counters of QueryOutcome).
  common::Status ReadNodes(std::span<const rstar::PageId> ids,
                           std::vector<rstar::Node>* out,
                           IoFaultCounters* counters = nullptr) const;

  // Like ReadNode/ReadNodes, but delivers the records already converted
  // to the SoA core::FlatNode layout the engine's page cache stores (one
  // conversion per cold read; warm path never sees an rstar::Node). Same
  // retry/fault semantics as ReadNodes.
  common::Result<core::FlatNode> ReadFlatNode(
      rstar::PageId id, IoFaultCounters* counters = nullptr) const;
  common::Status ReadFlatNodes(std::span<const rstar::PageId> ids,
                               std::vector<core::FlatNode>* out,
                               IoFaultCounters* counters = nullptr) const;

  // Location-explicit forms: read the record for `ids[i]` at `locs[i]`
  // instead of resolving through the reader's own layout. The engine's
  // per-query snapshots resolve PageIds themselves (a mutable index moves
  // PageIds between commits), then read here. Same batching, retry and
  // fault semantics as the id-resolved forms. `locs` must align with
  // `ids` and every span must be nonzero.
  common::Status ReadNodesAt(std::span<const rstar::PageId> ids,
                             std::span<const storage::PageLocation> locs,
                             std::vector<rstar::Node>* out,
                             IoFaultCounters* counters = nullptr) const;
  common::Result<core::FlatNode> ReadFlatNodeAt(
      rstar::PageId id, const storage::PageLocation& loc,
      IoFaultCounters* counters = nullptr) const;
  common::Status ReadFlatNodesAt(std::span<const rstar::PageId> ids,
                                 std::span<const storage::PageLocation> locs,
                                 std::vector<core::FlatNode>* out,
                                 IoFaultCounters* counters = nullptr) const;

  // --- Split batched read: plan / execute / finish --------------------
  // The completion-driven engine path. PlanBatchRead validates the
  // locations and builds the buffer + requests (counting the batch's
  // planned media reads); the caller executes the requests; then
  // NoteBatchOutcome accounts the batch-level status (retryable failure
  // invalidates the buffer and falls back per record, permanent failure
  // is returned for the caller to propagate) and Finish*Record delivers
  // record `i` — decoding from the plan's buffer when `bytes_valid`,
  // otherwise re-reading just that record through the retry loop. Each
  // delivered record is counted exactly as on the ReadNodesAt path.
  common::Status PlanBatchRead(std::span<const rstar::PageId> ids,
                               std::span<const storage::PageLocation> locs,
                               ReadBatchPlan* plan) const;
  common::Status NoteBatchOutcome(const common::Status& batch,
                                  bool* bytes_valid,
                                  IoFaultCounters* counters) const;
  common::Result<rstar::Node> FinishNodeRecord(ReadBatchPlan* plan, size_t i,
                                               bool bytes_valid,
                                               IoFaultCounters* counters) const;
  common::Result<core::FlatNode> FinishFlatRecord(
      ReadBatchPlan* plan, size_t i, bool bytes_valid,
      IoFaultCounters* counters) const;

  // The store this reader reads from (the engine hands it to kernel-native
  // I/O backends, which probe it for raw fds).
  const storage::PageStore* store() const { return store_; }

  // Physical media accesses issued so far: merged batch runs at plan time
  // plus every individual (retry) read. pages_read / media_reads is the
  // pages-per-read figure the hot-neighbor placement pass exists to raise.
  uint64_t media_reads() const {
    return media_reads_.load(std::memory_order_relaxed);
  }

  // Aggregate fault activity since the reader was opened.
  ReaderFaultTotals fault_totals() const;

  // Registers the reader's instruments on `registry` and reports into
  // them from then on: sqp_reader_records_read_total, per-disk
  // sqp_reader_pages_read_total{disk=d} (each counted once per record
  // delivered, so their sum equals the pages the engine fetched from the
  // store), fault/retry/failed-record counters mirroring fault_totals(),
  // and read/decode/retry latency histograms (docs/OBSERVABILITY.md).
  // Call once, before the reader is shared across threads.
  void EnableMetrics(obs::MetricsRegistry* registry);

 private:
  StoredIndexReader(const storage::PageStore* store,
                    storage::IndexLayout layout, RetryPolicy retry)
      : store_(store), layout_(std::move(layout)), retry_(retry) {}

  // Reads + decodes one record with the retry loop; `buf` is scratch of
  // at least span * page_size bytes.
  common::Result<rstar::Node> ReadOneWithRetry(
      rstar::PageId id, const storage::PageLocation& loc, uint8_t* buf,
      IoFaultCounters* counters) const;

  common::Result<rstar::Node> DecodeRecord(rstar::PageId id,
                                           const storage::PageLocation& loc,
                                           const uint8_t* buf) const;

  const storage::PageStore* store_;  // not owned
  storage::IndexLayout layout_;
  RetryPolicy retry_;

  mutable std::atomic<uint64_t> total_faults_{0};
  mutable std::atomic<uint64_t> total_retries_{0};
  mutable std::atomic<uint64_t> total_failed_records_{0};
  mutable std::atomic<uint64_t> media_reads_{0};

  // Registry instruments (EnableMetrics); all null when unmetered.
  obs::Counter* m_records_ = nullptr;
  obs::Counter* m_faults_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_failed_records_ = nullptr;
  obs::Counter* m_media_reads_ = nullptr;
  std::vector<obs::Counter*> m_pages_by_disk_;
  obs::Histogram* m_read_seconds_ = nullptr;
  obs::Histogram* m_decode_seconds_ = nullptr;
  obs::Histogram* m_retry_seconds_ = nullptr;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_STORED_INDEX_H_
