// Page-id-level read access to a persisted index image.
//
// storage::PageStore speaks (disk, offset, len); the execution engine
// speaks PageIds. StoredIndexReader bridges the two using the on-disk
// directory (storage::ReadIndexLayout): it resolves each PageId to its
// primary record's location, groups batch reads per disk, and lets the
// store merge offset-adjacent records into single preads. Every record is
// checksum-verified and decoded on the way in, so a damaged page surfaces
// as a Status at query time, never as a wrong answer.

#ifndef SQP_EXEC_STORED_INDEX_H_
#define SQP_EXEC_STORED_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "rstar/node.h"
#include "rstar/types.h"
#include "storage/index_io.h"
#include "storage/page_store.h"

namespace sqp::exec {

class StoredIndexReader {
 public:
  // Reads and validates the store's layout. `store` must outlive the
  // reader and its contents must not change while the reader is in use.
  static common::Result<std::unique_ptr<StoredIndexReader>> Open(
      const storage::PageStore* store);

  const storage::IndexLayout& layout() const { return layout_; }
  int num_disks() const { return layout_.decluster.num_disks; }

  // Primary record location of `id`; InvalidArgument if not live.
  common::Result<storage::PageLocation> LocationOf(rstar::PageId id) const;

  // Reads and decodes one node record.
  common::Result<rstar::Node> ReadNode(rstar::PageId id) const;

  // Reads and decodes a batch of node records, appended to `out` in `ids`
  // order. All page reads go through one PageStore::ReadPages call, so
  // records on the same disk that are adjacent in the file cost a single
  // pread. Safe to call from several threads concurrently.
  common::Status ReadNodes(std::span<const rstar::PageId> ids,
                           std::vector<rstar::Node>* out) const;

 private:
  StoredIndexReader(const storage::PageStore* store,
                    storage::IndexLayout layout)
      : store_(store), layout_(std::move(layout)) {}

  const storage::PageStore* store_;  // not owned
  storage::IndexLayout layout_;
};

}  // namespace sqp::exec

#endif  // SQP_EXEC_STORED_INDEX_H_
