#include "exec/io_pool.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace sqp::exec {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DiskIoPool::DiskIoPool(int num_disks, obs::MetricsRegistry* metrics,
                       const DiskIoPoolOptions& options) {
  SQP_CHECK(num_disks >= 1);
  SQP_CHECK(options.max_queue_depth >= 1);
  metered_ = metrics != nullptr;
  max_queue_depth_ = options.max_queue_depth;
  for (int d = 0; d < num_disks; ++d) {
    DiskQueue& q = queues_.emplace_back();
    if (metrics != nullptr) {
      q.jobs_total =
          metrics->GetCounter(obs::WithLabel("sqp_io_jobs_total", "disk", d));
      q.queue_depth =
          metrics->GetGauge(obs::WithLabel("sqp_io_queue_depth", "disk", d));
      q.backpressure_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_backpressure_waits_total", "disk", d));
      q.rejections_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_queue_rejections_total", "disk", d));
      q.wait_seconds = metrics->GetHistogram(
          obs::WithLabel("sqp_io_wait_seconds", "disk", d),
          obs::MetricsRegistry::LatencyBuckets());
      q.service_seconds = metrics->GetHistogram(
          obs::WithLabel("sqp_io_service_seconds", "disk", d),
          obs::MetricsRegistry::LatencyBuckets());
    }
  }
  workers_.reserve(static_cast<size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    workers_.emplace_back([this, d] { WorkerLoop(&queues_[d]); });
  }
}

DiskIoPool::~DiskIoPool() {
  for (DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    q.stop = true;
    q.cv.notify_all();
    q.space_cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void DiskIoPool::Submit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  QueuedJob queued;
  queued.fn = std::move(job);
  if (metered_) queued.enqueue_s = NowSeconds();
  std::unique_lock<std::mutex> lock(q.mu);
  SQP_CHECK(!q.stop);
  if (q.jobs.size() >= max_queue_depth_) {
    // Overloaded: stall the submitting query thread until the worker
    // drains a slot. Workers never submit, so this cannot deadlock.
    ++q.backpressure_waits;
    if (q.backpressure_total != nullptr) q.backpressure_total->Add(1);
    q.space_cv.wait(lock, [this, &q] {
      return q.stop || q.jobs.size() < max_queue_depth_;
    });
    SQP_CHECK(!q.stop);
  }
  q.jobs.push_back(std::move(queued));
  if (q.queue_depth != nullptr) q.queue_depth->Add(1);
  q.cv.notify_one();
}

bool DiskIoPool::TrySubmit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  QueuedJob queued;
  queued.fn = std::move(job);
  if (metered_) queued.enqueue_s = NowSeconds();
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.stop || q.jobs.size() >= max_queue_depth_) {
    ++q.rejections;
    if (q.rejections_total != nullptr) q.rejections_total->Add(1);
    return false;
  }
  q.jobs.push_back(std::move(queued));
  if (q.queue_depth != nullptr) q.queue_depth->Add(1);
  q.cv.notify_one();
  return true;
}

uint64_t DiskIoPool::jobs_completed() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.completed;
  }
  return total;
}

uint64_t DiskIoPool::backpressure_waits() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.backpressure_waits;
  }
  return total;
}

uint64_t DiskIoPool::queue_rejections() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.rejections;
  }
  return total;
}

void DiskIoPool::WorkerLoop(DiskQueue* queue) {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(queue->mu);
      queue->cv.wait(lock,
                     [queue] { return queue->stop || !queue->jobs.empty(); });
      if (queue->jobs.empty()) return;  // stop requested and drained
      job = std::move(queue->jobs.front());
      queue->jobs.pop_front();
      if (queue->queue_depth != nullptr) queue->queue_depth->Add(-1);
      queue->space_cv.notify_one();
    }
    double start_s = 0.0;
    if (metered_) {
      start_s = NowSeconds();
      queue->wait_seconds->Observe(start_s - job.enqueue_s);
    }
    job.fn();
    if (metered_) {
      queue->service_seconds->Observe(NowSeconds() - start_s);
      queue->jobs_total->Add(1);
    }
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      ++queue->completed;
    }
  }
}

}  // namespace sqp::exec
