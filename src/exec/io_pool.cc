#include "exec/io_pool.h"

#include <utility>

#include "common/check.h"

namespace sqp::exec {

DiskIoPool::DiskIoPool(int num_disks) {
  SQP_CHECK(num_disks >= 1);
  for (int d = 0; d < num_disks; ++d) queues_.emplace_back();
  workers_.reserve(static_cast<size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    workers_.emplace_back([this, d] { WorkerLoop(&queues_[d]); });
  }
}

DiskIoPool::~DiskIoPool() {
  for (DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    q.stop = true;
    q.cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void DiskIoPool::Submit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  SQP_CHECK(!q.stop);
  q.jobs.push_back(std::move(job));
  q.cv.notify_one();
}

uint64_t DiskIoPool::jobs_completed() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.completed;
  }
  return total;
}

void DiskIoPool::WorkerLoop(DiskQueue* queue) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(queue->mu);
      queue->cv.wait(lock,
                     [queue] { return queue->stop || !queue->jobs.empty(); });
      if (queue->jobs.empty()) return;  // stop requested and drained
      job = std::move(queue->jobs.front());
      queue->jobs.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      ++queue->completed;
    }
  }
}

}  // namespace sqp::exec
