#include "exec/io_pool.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace sqp::exec {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Identifies the pool (if any) whose worker is running on this thread,
// so Submit can assert it is never called from one — the blocking
// backpressure path would self-deadlock: the worker would wait for the
// queue it alone drains.
thread_local const DiskIoPool* tls_worker_pool = nullptr;

}  // namespace

DiskIoPool::DiskIoPool(int num_disks, obs::MetricsRegistry* metrics,
                       const DiskIoPoolOptions& options) {
  SQP_CHECK(num_disks >= 1);
  SQP_CHECK(options.max_queue_depth >= 1);
  SQP_CHECK(options.max_speculative_depth >= 1);
  metered_ = metrics != nullptr;
  max_queue_depth_ = options.max_queue_depth;
  max_speculative_depth_ = options.max_speculative_depth;
  for (int d = 0; d < num_disks; ++d) {
    DiskQueue& q = queues_.emplace_back();
    if (metrics != nullptr) {
      q.jobs_total =
          metrics->GetCounter(obs::WithLabel("sqp_io_jobs_total", "disk", d));
      q.queue_depth =
          metrics->GetGauge(obs::WithLabel("sqp_io_queue_depth", "disk", d));
      q.backpressure_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_backpressure_waits_total", "disk", d));
      q.rejections_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_queue_rejections_total", "disk", d));
      q.spec_issued_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_speculative_issued_total", "disk", d));
      q.spec_cancelled_total = metrics->GetCounter(
          obs::WithLabel("sqp_io_speculative_cancelled_total", "disk", d));
      q.wait_seconds = metrics->GetHistogram(
          obs::WithLabel("sqp_io_wait_seconds", "disk", d),
          obs::MetricsRegistry::LatencyBuckets());
      q.service_seconds = metrics->GetHistogram(
          obs::WithLabel("sqp_io_service_seconds", "disk", d),
          obs::MetricsRegistry::LatencyBuckets());
    }
  }
  workers_.reserve(static_cast<size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    workers_.emplace_back([this, d] { WorkerLoop(&queues_[d]); });
  }
}

DiskIoPool::~DiskIoPool() {
  for (DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    q.stop = true;
    q.cv.notify_all();
    q.space_cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void DiskIoPool::Submit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  // A worker submitting to its own (full) queue waits forever for itself;
  // submitting to a sibling disk can deadlock just as hard once both
  // queues fill. The contract is simply "workers never submit".
  SQP_DCHECK(!OnWorkerThread());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  QueuedJob queued;
  queued.fn = std::move(job);
  if (metered_) queued.enqueue_s = NowSeconds();
  std::unique_lock<std::mutex> lock(q.mu);
  SQP_CHECK(!q.stop);
  if (q.jobs.size() >= max_queue_depth_) {
    // Overloaded: stall the submitting query thread until the worker
    // drains a slot. Workers never submit, so this cannot deadlock.
    ++q.backpressure_waits;
    if (q.backpressure_total != nullptr) q.backpressure_total->Add(1);
    q.space_cv.wait(lock, [this, &q] {
      return q.stop || q.jobs.size() < max_queue_depth_;
    });
    SQP_CHECK(!q.stop);
  }
  q.jobs.push_back(std::move(queued));
  if (q.queue_depth != nullptr) q.queue_depth->Add(1);
  q.cv.notify_one();
}

bool DiskIoPool::TrySubmit(int disk, std::function<void()> job) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  QueuedJob queued;
  queued.fn = std::move(job);
  if (metered_) queued.enqueue_s = NowSeconds();
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.stop || q.jobs.size() >= max_queue_depth_) {
    ++q.rejections;
    if (q.rejections_total != nullptr) q.rejections_total->Add(1);
    return false;
  }
  q.jobs.push_back(std::move(queued));
  if (q.queue_depth != nullptr) q.queue_depth->Add(1);
  q.cv.notify_one();
  return true;
}

bool DiskIoPool::SubmitSpeculative(int disk, std::function<void()> job,
                                   std::function<bool()> cancel) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  DiskQueue& q = queues_[static_cast<size_t>(disk)];
  QueuedJob queued;
  queued.fn = std::move(job);
  queued.cancel = std::move(cancel);
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.stop || q.spec_jobs.size() >= max_speculative_depth_) {
    ++q.rejections;
    if (q.rejections_total != nullptr) q.rejections_total->Add(1);
    return false;
  }
  ++q.spec_issued;
  if (q.spec_issued_total != nullptr) q.spec_issued_total->Add(1);
  q.spec_jobs.push_back(std::move(queued));
  q.cv.notify_one();
  return true;
}

uint64_t DiskIoPool::jobs_completed() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.completed;
  }
  return total;
}

uint64_t DiskIoPool::backpressure_waits() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.backpressure_waits;
  }
  return total;
}

uint64_t DiskIoPool::queue_rejections() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.rejections;
  }
  return total;
}

uint64_t DiskIoPool::speculative_issued() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.spec_issued;
  }
  return total;
}

uint64_t DiskIoPool::speculative_completed() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.spec_completed;
  }
  return total;
}

uint64_t DiskIoPool::speculative_cancelled() const {
  uint64_t total = 0;
  for (const DiskQueue& q : queues_) {
    std::lock_guard<std::mutex> lock(q.mu);
    total += q.spec_cancelled;
  }
  return total;
}

size_t DiskIoPool::demand_queue_depth(int disk) const {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  const DiskQueue& q = queues_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  return q.jobs.size();
}

bool DiskIoPool::demand_busy(int disk) const {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  const DiskQueue& q = queues_[static_cast<size_t>(disk)];
  std::lock_guard<std::mutex> lock(q.mu);
  return !q.jobs.empty() || q.demand_active;
}

bool DiskIoPool::OnWorkerThread() const { return tls_worker_pool == this; }

void DiskIoPool::CancelQueuedSpeculativeLocked(DiskQueue* queue) {
  while (!queue->spec_jobs.empty()) {
    queue->spec_jobs.pop_front();
    ++queue->spec_cancelled;
    if (queue->spec_cancelled_total != nullptr) {
      queue->spec_cancelled_total->Add(1);
    }
  }
}

void DiskIoPool::WorkerLoop(DiskQueue* queue) {
  tls_worker_pool = this;
  for (;;) {
    QueuedJob job;
    bool speculative = false;
    {
      std::unique_lock<std::mutex> lock(queue->mu);
      queue->cv.wait(lock, [queue] {
        return queue->stop || !queue->jobs.empty() ||
               !queue->spec_jobs.empty();
      });
      if (queue->stop) {
        // Shutdown never pays for queued speculation: cancel it all,
        // then keep draining demand work.
        CancelQueuedSpeculativeLocked(queue);
        if (queue->jobs.empty()) return;  // demand drained too
      }
      if (!queue->jobs.empty()) {
        // Demand strictly first — speculation only runs on an otherwise
        // idle spindle.
        job = std::move(queue->jobs.front());
        queue->jobs.pop_front();
        queue->demand_active = true;  // cleared after the job runs
        if (queue->queue_depth != nullptr) queue->queue_depth->Add(-1);
        queue->space_cv.notify_one();
      } else {
        job = std::move(queue->spec_jobs.front());
        queue->spec_jobs.pop_front();
        speculative = true;
      }
    }
    if (speculative) {
      // Last-moment cancellation check, off the queue lock: the target
      // page typically landed in cache (via a demand read or an earlier
      // prefetch) while this job waited.
      if (job.cancel && job.cancel()) {
        std::lock_guard<std::mutex> lock(queue->mu);
        ++queue->spec_cancelled;
        if (queue->spec_cancelled_total != nullptr) {
          queue->spec_cancelled_total->Add(1);
        }
        continue;
      }
      job.fn();
      std::lock_guard<std::mutex> lock(queue->mu);
      ++queue->spec_completed;
      continue;
    }
    double start_s = 0.0;
    if (metered_) {
      start_s = NowSeconds();
      queue->wait_seconds->Observe(start_s - job.enqueue_s);
    }
    job.fn();
    if (metered_) {
      queue->service_seconds->Observe(NowSeconds() - start_s);
      queue->jobs_total->Add(1);
    }
    {
      std::lock_guard<std::mutex> lock(queue->mu);
      queue->demand_active = false;
      ++queue->completed;
    }
  }
}

}  // namespace sqp::exec
