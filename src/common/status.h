// Lightweight error-propagation types used across the library.
//
// The library does not throw exceptions across API boundaries (see
// DESIGN.md). Fallible operations return Status (no payload) or Result<T>
// (payload or error). Both are cheap to move and carry a code plus a
// human-readable message.

#ifndef SQP_COMMON_STATUS_H_
#define SQP_COMMON_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace sqp::common {

// Error taxonomy. Keep the list short: callers dispatch on coarse classes,
// the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  // A transient condition (e.g. an intermittent media error): the same
  // operation may succeed if retried. Readers with a retry policy treat
  // this code — and checksum corruption, which in-flight damage also
  // produces — as retryable; every other code is permanent.
  kUnavailable,
  // The caller (or an operator) asked for the operation to stop; the
  // partial work done so far is discarded. Not a data error.
  kCancelled,
  // The operation's deadline passed before it finished. Like kCancelled,
  // a scheduling outcome rather than a data error; retrying with a looser
  // deadline may succeed.
  kDeadlineExceeded,
  // A bounded resource (admission queue, connection slot) is full and the
  // request was shed rather than queued unboundedly. The canonical
  // overload signal: back off and retry, possibly against another replica.
  kResourceExhausted,
};

// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

// A success-or-error value without payload.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// A value of type T or an error Status. T must be movable.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {
    if (std::get<Status>(data_).ok()) {
      // An OK status carries no value; constructing a Result from it is a
      // programming error.
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  // Precondition: ok().
  const T& value() const& {
    if (!ok()) std::abort();
    return std::get<T>(data_);
  }
  T& value() & {
    if (!ok()) std::abort();
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sqp::common

// Propagates a non-OK status to the caller.
#define SQP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::sqp::common::Status _sqp_status = (expr);     \
    if (!_sqp_status.ok()) return _sqp_status;      \
  } while (false)

#endif  // SQP_COMMON_STATUS_H_
