// Deterministic random number generation.
//
// Every stochastic component of the library (dataset generators, cylinder
// assignment, Poisson arrivals, random declustering) draws from an Rng
// seeded explicitly, so whole experiments replay bit-identically for a
// given seed. std::mt19937_64 is specified by the standard, so streams are
// identical across platforms and compilers.

#ifndef SQP_COMMON_RNG_H_
#define SQP_COMMON_RNG_H_

#include <cstdint>
#include <random>

#include "common/check.h"

namespace sqp::common {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double Uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    SQP_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SQP_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with the given rate (mean 1/rate). Used for Poisson
  // inter-arrival times.
  double Exponential(double rate) {
    SQP_DCHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  // Spawns an independent child generator. Streams of parent and child do
  // not collide in practice (distinct seeding by a splitmix-style hash).
  Rng Fork() {
    uint64_t s = engine_();
    s ^= 0x9E3779B97F4A7C15ull;
    s *= 0xBF58476D1CE4E5B9ull;
    return Rng(s);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sqp::common

#endif  // SQP_COMMON_RNG_H_
