#include "common/status.h"

namespace sqp::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace sqp::common
