// CHECK-style invariant assertions that are active in all build modes.
//
// These guard internal invariants (tree structure consistency, simulator
// causality). Violations indicate a library bug, so the process aborts with
// a source location rather than limping on with corrupted state.

#ifndef SQP_COMMON_CHECK_H_
#define SQP_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sqp::common::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace sqp::common::internal

#define SQP_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::sqp::common::internal::CheckFailed(#cond, __FILE__, __LINE__);   \
    }                                                                    \
  } while (false)

#define SQP_CHECK_OK(expr)                                               \
  do {                                                                   \
    ::sqp::common::Status _sqp_chk = (expr);                             \
    if (!_sqp_chk.ok()) {                                                \
      std::fprintf(stderr, "status not ok: %s\n",                        \
                   _sqp_chk.ToString().c_str());                         \
      ::sqp::common::internal::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                                    \
  } while (false)

#ifndef NDEBUG
#define SQP_DCHECK(cond) SQP_CHECK(cond)
#else
#define SQP_DCHECK(cond) \
  do {                   \
  } while (false)
#endif

#endif  // SQP_COMMON_CHECK_H_
