// Streaming statistics accumulators used by the simulator metrics and the
// benchmark harnesses.

#ifndef SQP_COMMON_STATS_H_
#define SQP_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/check.h"

namespace sqp::common {

// Mean / variance / min / max over a stream of doubles (Welford update).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Keeps all samples; supports exact quantiles. Intended for per-query
// response times (hundreds to a few thousand samples).
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); }

  size_t count() const { return samples_.size(); }

  double Mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  // Exact quantile by nearest-rank; q in [0, 1].
  double Quantile(double q) const {
    SQP_CHECK(!samples_.empty());
    SQP_CHECK(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double Max() const {
    SQP_CHECK(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
  }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace sqp::common

#endif  // SQP_COMMON_STATS_H_
