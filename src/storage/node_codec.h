// Portable (de)serialization of rstar::Node into fixed-size pages.
//
// Entry record (8*dim + 12 bytes, little-endian):
//   0        f32[dim]  MBR lower corner
//   4*dim    f32[dim]  MBR upper corner
//   8*dim    u64       child PageId (internal) or ObjectId (leaf)
//   8*dim+8  u32       subtree object count (the Lemma 1 augmentation)
//
// A node record occupies `NodeSpan` consecutive pages: a kNode page
// followed by kNodeContinuation pages, each with its own header and
// checksum. The record widens object ids to 64 bits, so a node that fills
// one in-memory page (whose capacity model uses 32-bit pointers, see
// rstar/config.h) may span two storage pages; X-tree supernodes span more.

#ifndef SQP_STORAGE_NODE_CODEC_H_
#define SQP_STORAGE_NODE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rstar/node.h"
#include "storage/page_format.h"

namespace sqp::storage {

// Entry record footprint for dimensionality `dim`.
size_t EntryRecordBytes(int dim);

// Entry records that fit in one page's payload (>= 1 for any valid
// TreeConfig: page_size >= 256 covers the header plus one record up to
// dim 25; higher dimensionalities require the proportionally larger pages
// such configurations already use).
size_t EntriesPerPage(int dim, size_t page_size);

// Pages needed to serialize `node`.
uint32_t NodeSpan(const rstar::Node& node, int dim, size_t page_size);

// Serializes `node` into NodeSpan sealed pages, appended to `out` as one
// contiguous buffer of NodeSpan * page_size bytes.
void EncodeNode(const rstar::Node& node, int dim, size_t page_size,
                std::vector<uint8_t>* out);

// Decodes a node record from `data` (exactly `span * page_size` bytes),
// verifying each page's checksum, the span/seq chain and that the record
// is for page `expected_id`. `what` names the record in error messages.
common::Result<rstar::Node> DecodeNode(const uint8_t* data, uint32_t span,
                                       int dim, size_t page_size,
                                       rstar::PageId expected_id,
                                       const std::string& what);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_NODE_CODEC_H_
