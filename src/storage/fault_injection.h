// Deterministic fault injection for PageStore read paths.
//
// The paper's disk-array setting assumes media that can fail mid-workload:
// drives return intermittent EIO, a sector arrives torn or bit-flipped, a
// spindle stalls. FaultInjectingPageStore is a PageStore decorator that
// injects exactly those failures — scriptably, reproducibly (one seeded
// RNG decides every probabilistic draw) and with per-disk / per-byte-range
// targeting — so tests and benchmarks can drive the whole execution stack
// through its error paths and assert on precisely what happened via the
// fault log.
//
// Fault model (docs/FAULTS.md):
//   * kBitFlip       — the read completes but a burst of bits in the
//                      returned buffer is flipped (in-flight corruption;
//                      the media itself is untouched, so a retry heals it).
//   * kTornRead      — the read completes short: the tail of the buffer is
//                      zeroed from a random cut point (a torn page).
//   * kTransientError— the attempt fails with Status::Unavailable; an
//                      independent retry re-draws the probability.
//   * kPermanentError— every matching read fails with an Internal EIO
//                      (dead sector / dead drive) until the spec disarms.
//   * kLatencySpike  — the read succeeds but only after `latency_s` of
//                      wall-clock stall on the issuing I/O worker.
//   * kPowerCut      — write-side: after a scripted number of write
//                      operations the "machine dies": the next write is
//                      dropped (or torn to a random prefix) and every write
//                      operation after that fails. Reads are unaffected, so
//                      a recovery pass can inspect exactly what made it to
//                      media. Armed via ArmPowerCut(), not AddFault().
//
// Read faults are scripted with AddFault() specs. The write path has its
// own power-cut mode (ArmPowerCut) driven by a global write-operation
// clock — WriteAt, Truncate and Sync each advance it by one — so a
// crash-recovery sweep can kill a workload deterministically at every
// write boundary.

#ifndef SQP_STORAGE_FAULT_INJECTION_H_
#define SQP_STORAGE_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/page_store.h"

namespace sqp::storage {

enum class FaultKind : uint8_t {
  kBitFlip = 0,
  kTornRead = 1,
  kTransientError = 2,
  kPermanentError = 3,
  kLatencySpike = 4,
  kPowerCut = 5,
};
inline constexpr int kNumFaultKinds = 6;

// "bit_flip", "torn_read", ...
const char* FaultKindName(FaultKind kind);

// One scripted fault. A read attempt matches when its disk passes the
// `disk` filter and its byte range [offset, offset+len) intersects
// [offset_lo, offset_hi); each matching attempt then fires with
// `probability`. Specs are evaluated in insertion order and the first one
// that fires wins the attempt.
struct FaultSpec {
  FaultKind kind = FaultKind::kTransientError;
  int disk = -1;                  // target disk; -1 matches every disk
  uint64_t offset_lo = 0;         // byte range filter on the read
  uint64_t offset_hi = UINT64_MAX;
  double probability = 1.0;       // per matching read attempt
  int max_hits = -1;              // disarm after N injections; -1 = never
  double latency_s = 0.0;         // kLatencySpike stall
};

// One injected fault, recorded in insertion order for assertions.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientError;
  int spec_index = -1;    // which AddFault() spec fired
  int disk = 0;
  uint64_t offset = 0;
  size_t len = 0;
  uint64_t read_seq = 0;  // global read-attempt counter at injection time
};

struct FaultInjectionStats {
  uint64_t reads = 0;       // read attempts observed (batch = one per request)
  uint64_t faults = 0;      // attempts that had a fault injected
  uint64_t write_ops = 0;   // write operations observed (WriteAt/Truncate/Sync)
  uint64_t by_kind[kNumFaultKinds] = {};
};

class FaultInjectingPageStore : public PageStore {
 public:
  // `base` must outlive this store. All probabilistic draws come from one
  // generator seeded with `seed`, so a single-threaded read sequence
  // replays bit-identically; concurrent readers still get a deterministic
  // *set* of faults per interleaving.
  FaultInjectingPageStore(PageStore* base, uint64_t seed);

  // Arms `spec`; returns its index (the spec_index of its FaultEvents).
  int AddFault(const FaultSpec& spec);

  // Disarms every spec (and any armed power cut) and clears the log and
  // counters.
  void Reset();

  // Arms the write-side power cut: the first `allow_ops` write operations
  // (WriteAt, Truncate, Sync — one tick each) proceed normally; the
  // (allow_ops+1)-th, if it is a WriteAt, is silently dropped — or, with
  // `tear_first`, applied as a random prefix of the buffer — and every
  // write operation after that fails Unavailable. A Truncate or Sync at
  // the cut boundary simply fails. Reads are never affected, so recovery
  // can run against the surviving bytes. Re-arming replaces the previous
  // schedule; the write-op clock is NOT reset (use `stats().write_ops` as
  // the clock base, or Reset() everything).
  void ArmPowerCut(uint64_t allow_ops, bool tear_first);

  // Disarms a pending or tripped power cut; subsequent writes succeed.
  void DisarmPowerCut();

  // Write operations observed so far (the power-cut clock). A clean run
  // of a workload measures its kill-point space with this.
  uint64_t write_ops() const;

  FaultInjectionStats stats() const;
  std::vector<FaultEvent> log() const;

  int num_disks() const override { return base_->num_disks(); }
  common::Result<uint64_t> SizeOf(int disk) const override {
    return base_->SizeOf(disk);
  }
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  // Decomposed into one faultable attempt per request (no merging): fault
  // targeting is per-request, and a fault in one request must not disturb
  // the buffers of its batch siblings.
  common::Status ReadPages(
      std::span<const ReadRequest> requests) const override;
  // Writes pass through unless a power cut is armed (ArmPowerCut); each
  // advances the write-op clock either way.
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;

 private:
  // What one read attempt should suffer, decided under the lock, applied
  // outside it (so a latency stall never serializes other disks' reads).
  struct Decision {
    bool fire = false;
    FaultKind kind = FaultKind::kTransientError;
    uint64_t bit_index = 0;   // kBitFlip: first flipped bit within buffer
    uint32_t burst_bits = 1;  // kBitFlip: consecutive bits flipped
    uint64_t cut_at = 0;      // kTornRead: zero the buffer from this byte
    double latency_s = 0.0;   // kLatencySpike
  };

  Decision Decide(int disk, uint64_t offset, size_t len) const;

  // What one write operation should suffer, decided under the lock.
  struct WriteDecision {
    bool fail = false;      // the operation fails Unavailable (post-cut)
    bool drop = false;      // WriteAt at the cut boundary: discard silently
    bool tear = false;      // WriteAt at the cut boundary: write a prefix
    size_t tear_len = 0;    // prefix length when tearing
  };

  WriteDecision DecideWrite(int disk, uint64_t offset, size_t len);

  PageStore* base_;  // not owned
  mutable std::mutex mu_;
  mutable common::Rng rng_;
  mutable std::vector<FaultSpec> specs_;
  mutable std::vector<int> hits_;  // injections per spec, aligned to specs_
  mutable std::vector<FaultEvent> log_;
  mutable FaultInjectionStats stats_;

  // Power-cut schedule (guarded by mu_).
  bool power_cut_armed_ = false;
  bool power_cut_tripped_ = false;
  bool power_cut_tear_first_ = false;
  uint64_t power_cut_allow_ops_ = 0;  // write ops allowed before the cut
  uint64_t power_cut_base_ops_ = 0;   // write-op clock value when armed

  // `base_` is written only before the store is shared; everything else is
  // guarded by mu_, declared mutable because faults fire on const reads.
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_FAULT_INJECTION_H_
