// Per-index write-ahead log (docs/STORAGE.md).
//
// The log is an append-only byte stream on one PageStore disk. Each record
// describes one committed mutation against the base index image: the new
// root, the new object count, and the physical page-map deltas (PageId ->
// fresh copy-on-write location, or span 0 for a freed PageId). The record
// is the unit of atomicity — node bytes are made durable *before* the
// record is appended, so a record that scans as valid implies its pages
// are readable, and a crash mid-append leaves a torn tail that the scanner
// detects (magic / CRC / exact-next-LSN checks) and drops.
//
// Record framing (little-endian, 24-byte header + payload):
//   0  u32 magic "SQPW"
//   4  u16 format version (page_format.h kFormatVersion)
//   6  u16 record type (1 = commit)
//   8  u32 payload length in bytes
//   12 u32 crc32c over the whole record with this field zeroed
//   16 u64 lsn (1, 2, 3, ... strictly sequential)
// Commit payload:
//   0  u32 root PageId
//   4  u64 object count after the op
//   12 u32 delta count
//   16 deltas, 29 bytes each:
//      u32 page id, i32 disk, u64 byte offset, u32 span (0 = freed),
//      u8 level, i32 mirror disk (-1 unmirrored), u32 cylinder
//
// Why torn tails cannot be mistaken for records: the scanner accepts a
// record only if magic, version, length bound, CRC *and* the exact next
// LSN all hold. After recovery, new appends overwrite the dropped tail in
// place; any stale remnant bytes beyond the new tail start mid-payload of
// a dead record and fail the magic/CRC gate on the next scan.

#ifndef SQP_STORAGE_WAL_H_
#define SQP_STORAGE_WAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/index_io.h"
#include "storage/page_store.h"

namespace sqp::storage {

// "SQPW" in ASCII; first four bytes of every WAL record.
inline constexpr uint32_t kWalMagic = 0x57505153;
inline constexpr uint16_t kWalRecordCommit = 1;
inline constexpr size_t kWalHeaderBytes = 24;

// One page-map delta of a commit. span == 0 frees the PageId; otherwise
// the PageId's current bytes live at `loc` (a fresh copy-on-write slot).
struct WalPageDelta {
  rstar::PageId page = rstar::kInvalidPage;
  PageLocation loc;
};

struct WalCommit {
  uint64_t lsn = 0;  // assigned by WalWriter::AppendCommit
  rstar::PageId root = rstar::kInvalidPage;
  uint64_t object_count = 0;
  std::vector<WalPageDelta> deltas;
};

struct WalScanResult {
  std::vector<WalCommit> records;   // every valid record, in LSN order
  uint64_t valid_end_offset = 0;    // byte offset just past the last one
  uint64_t next_lsn = 1;            // LSN the next append must carry
  bool torn_tail = false;           // bytes past valid_end_offset that did
                                    // not parse as the next record
};

// Scans the log on `disk` from byte 0, validating each record in turn.
// Stops at the first byte position that does not hold a complete, CRC-
// valid record carrying the exact next LSN; anything from there on is the
// torn tail of a crashed append (or its stale remnant) and is reported,
// not returned. Only I/O errors fail the scan — a damaged tail is an
// expected crash artifact, not corruption.
common::Result<WalScanResult> ScanWal(const PageStore& store, int disk);

// Appends commit records. Single-writer: the caller serializes appends
// (MutableIndex holds its writer lock across the whole commit pipeline).
class WalWriter {
 public:
  // Continues a log whose scan said the next record belongs at
  // `tail_offset` with LSN `next_lsn`. `store` must outlive the writer.
  WalWriter(PageStore* store, int disk, uint64_t next_lsn,
            uint64_t tail_offset);

  // Stamps `commit` with the next LSN, appends it and syncs the store.
  // The append + sync IS the commit point: once this returns OK the
  // mutation is durable. On error the in-memory stamp is rolled back and
  // the on-disk bytes, whatever subset landed, scan as a torn tail.
  common::Status AppendCommit(WalCommit* commit);

  // Restarts the log after a checkpoint folded all records into the base
  // image: truncates the disk and resets the LSN sequence.
  common::Status Reset();

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t tail_offset() const { return tail_offset_; }
  int disk() const { return disk_; }

 private:
  PageStore* store_;  // not owned
  int disk_;
  uint64_t next_lsn_;
  uint64_t tail_offset_;
};

// Serializes `commit` (which must already carry its LSN) into the exact
// byte image AppendCommit writes. Exposed for tests that forge records.
std::vector<uint8_t> EncodeWalCommit(const WalCommit& commit);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_WAL_H_
