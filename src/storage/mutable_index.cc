#include "storage/mutable_index.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "storage/node_codec.h"
#include "storage/page_format.h"

namespace sqp::storage {
namespace {

using parallel::PagePlacement;
using parallel::ParallelRStarTree;
using rstar::Node;
using rstar::PageId;

// Collects every page an operation dirtied, allocated or freed. The net
// effect is resolved afterwards against the live tree (a page allocated
// and freed within one op needs no durable trace at all).
class TouchedSetRecorder : public rstar::MutationRecorder {
 public:
  void OnNodeDirtied(PageId id) override { touched_.insert(id); }
  void OnNodeAllocated(PageId id) override { touched_.insert(id); }
  void OnNodeFreed(PageId id) override { touched_.insert(id); }

  std::vector<PageId> Sorted() const {
    std::vector<PageId> out(touched_.begin(), touched_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_set<PageId> touched_;
};

// Applies one commit record's deltas to `layout` (page map, root, object
// count, live-page total). Shared by recovery and the post-commit
// snapshot swap.
void ApplyCommit(const WalCommit& commit, IndexLayout* layout) {
  for (const WalPageDelta& d : commit.deltas) {
    if (d.page >= layout->pages.size()) {
      layout->pages.resize(d.page + 1);
    }
    PageLocation& slot = layout->pages[d.page];
    const bool was_live = slot.span > 0;
    const bool now_live = d.loc.span > 0;
    if (was_live && !now_live) --layout->live_pages;
    if (!was_live && now_live) ++layout->live_pages;
    slot = now_live ? d.loc : PageLocation{};
  }
  layout->root = commit.root;
  layout->object_count = commit.object_count;
}

bool PolicyEnabled(const CompactionPolicy& p) {
  return p.max_wal_bytes > 0 || p.max_wal_records > 0;
}

}  // namespace

common::Result<std::unique_ptr<MutableIndex>> MutableIndex::Open(
    GenerationEnv* env) {
  SQP_CHECK(env != nullptr);
  auto current = env->ReadCurrent();
  if (!current.ok()) return current.status();
  auto stores = env->OpenGeneration(*current);
  if (!stores.ok()) return stores.status();
  PageStore* data_store = stores->data;
  PageStore* wal_store = stores->wal;

  auto scan = ScanWal(*wal_store, /*disk=*/0);
  if (!scan.ok()) return scan.status();

  auto layout_or = ReadIndexLayout(*data_store);
  if (!layout_or.ok()) return layout_or.status();
  IndexLayout layout = std::move(*layout_or);
  for (const WalCommit& commit : scan->records) {
    ApplyCommit(commit, &layout);
  }
  if (layout.root >= layout.pages.size() ||
      layout.pages[layout.root].span == 0) {
    return CorruptionError("recovered root page " +
                           std::to_string(layout.root) + " is not live");
  }

  // Rebuild the in-memory tree from the recovered page map, re-reading
  // and checksum-verifying every live node (base image or WAL-referenced
  // copy-on-write version alike).
  const int dim = layout.tree_config.dim;
  const size_t page_size = layout.page_size;
  std::vector<std::unique_ptr<Node>> nodes(layout.pages.size());
  std::vector<PagePlacement> placements;
  std::vector<uint8_t> buf;
  for (PageId id = 0; id < layout.pages.size(); ++id) {
    const PageLocation& loc = layout.pages[id];
    if (loc.span == 0) continue;
    buf.resize(static_cast<size_t>(loc.span) * page_size);
    SQP_RETURN_IF_ERROR(
        data_store->ReadAt(loc.disk, loc.offset, buf.data(), buf.size()));
    auto decoded = DecodeNode(buf.data(), loc.span, dim, page_size, id,
                              "recovered page " + std::to_string(id));
    if (!decoded.ok()) return decoded.status();
    nodes[id] = std::make_unique<Node>(std::move(*decoded));
    PagePlacement pl;
    pl.page = id;
    pl.disk = loc.disk;
    pl.mirror = loc.mirror;
    pl.cylinder = static_cast<int>(loc.cylinder);
    placements.push_back(pl);
  }

  auto index = std::make_unique<ParallelRStarTree>(layout.tree_config,
                                                   layout.decluster);
  SQP_RETURN_IF_ERROR(index->Restore(layout.root, layout.object_count,
                                     std::move(nodes), placements));

  auto mi = std::unique_ptr<MutableIndex>(new MutableIndex());
  mi->env_ = env;
  mi->gen_stores_ = std::move(*stores);
  mi->generation_ = *current;
  mi->data_store_ = data_store;
  mi->wal_store_ = wal_store;
  mi->facade_.SetTarget(data_store);
  mi->index_ = std::move(index);
  mi->wal_ = std::make_unique<WalWriter>(wal_store, /*disk=*/0,
                                         scan->next_lsn,
                                         scan->valid_end_offset);
  mi->tails_.resize(static_cast<size_t>(data_store->num_disks()));
  for (int d = 0; d < data_store->num_disks(); ++d) {
    auto size = data_store->SizeOf(d);
    if (!size.ok()) return size.status();
    mi->tails_[static_cast<size_t>(d)] = *size;
  }
  mi->layout_ = std::make_shared<const IndexLayout>(std::move(layout));
  mi->recovery_.replayed = scan->records.size();
  mi->recovery_.torn_tail_dropped = scan->torn_tail ? 1 : 0;
  mi->recovery_.wal_records =
      mi->recovery_.replayed + mi->recovery_.torn_tail_dropped;
  mi->recovery_.generation = *current;

  // Garbage-collect orphans: generations a crashed (or interrupted)
  // checkpoint wrote aside but never published, or published-over bytes
  // whose removal didn't complete. Best-effort — a survivor is collected
  // by the next open.
  auto listed = env->ListGenerations();
  if (listed.ok()) {
    for (uint64_t g : *listed) {
      if (g == *current) continue;
      if (env->RemoveGeneration(g).ok()) {
        ++mi->recovery_.orphan_generations_removed;
      }
    }
  }
  return mi;
}

common::Result<std::unique_ptr<MutableIndex>> MutableIndex::OpenFromDir(
    const std::string& dir) {
  auto lock = LockFile::Acquire(dir + "/LOCK");
  if (!lock.ok()) return lock.status();
  auto env = std::make_unique<FileGenerationEnv>(dir);
  auto mi = Open(env.get());
  if (!mi.ok()) return mi.status();
  (*mi)->owned_env_ = std::move(env);
  (*mi)->lock_ = std::move(*lock);
  return mi;
}

MutableIndex::~MutableIndex() { StopCompaction(); }

common::Status MutableIndex::Insert(const geometry::Point& p,
                                    rstar::ObjectId id) {
  return Mutate(p, id, /*insert=*/true);
}

common::Status MutableIndex::Delete(const geometry::Point& p,
                                    rstar::ObjectId id) {
  return Mutate(p, id, /*insert=*/false);
}

common::Status MutableIndex::Mutate(const geometry::Point& p,
                                    rstar::ObjectId id, bool insert) {
  bool kick = false;
  {
    std::unique_lock<std::shared_mutex> lock(rw_mu_);
    if (failed_) {
      return common::Status::FailedPrecondition(
          "index poisoned by an earlier commit failure; reopen to recover");
    }
    TouchedSetRecorder recorder;
    rstar::RStarTree& tree = index_->tree();
    tree.SetMutationRecorder(&recorder);
    common::Status op_status;
    if (insert) {
      tree.Insert(p, id);
    } else {
      op_status = tree.Delete(p, id);
    }
    tree.SetMutationRecorder(nullptr);
    if (!op_status.ok()) return op_status;  // e.g. NotFound: tree untouched
    SQP_RETURN_IF_ERROR(CommitLocked(recorder.Sorted()));
    kick = true;
  }
  if (kick) {
    std::lock_guard<std::mutex> lk(compact_mu_);
    if (compact_thread_.joinable()) {
      compact_kick_ = true;
      compact_cv_.notify_one();
    }
  }
  return common::Status::OK();
}

common::Status MutableIndex::CommitLocked(
    const std::vector<rstar::PageId>& touched) {
  const IndexLayout& cur = *layout_;
  const int dim = cur.tree_config.dim;
  const size_t page_size = cur.page_size;

  WalCommit commit;
  commit.root = index_->tree().root();
  commit.object_count = index_->tree().size();
  std::vector<uint64_t> superseded;
  std::vector<uint8_t> buf;
  common::Status io;
  uint64_t pages_written = 0;
  for (PageId id : touched) {
    const PageLocation* old = nullptr;
    if (id < cur.pages.size() && cur.pages[id].span > 0) {
      old = &cur.pages[id];
    }
    WalPageDelta delta;
    delta.page = id;
    if (index_->placement().IsLive(id)) {
      // Copy-on-write: the node's new bytes go to its disk's file tail;
      // the base image and every older version stay byte-identical.
      const Node& n = index_->tree().node(id);
      const int disk = index_->placement().DiskOf(id);
      const int mirror = index_->placement().MirrorOf(id);
      buf.clear();
      EncodeNode(n, dim, page_size, &buf);
      delta.loc.disk = disk;
      delta.loc.offset = tails_[static_cast<size_t>(disk)];
      delta.loc.span = static_cast<uint32_t>(buf.size() / page_size);
      delta.loc.level = static_cast<uint8_t>(n.level);
      delta.loc.mirror = mirror;
      delta.loc.cylinder =
          static_cast<uint32_t>(index_->placement().CylinderOf(id));
      io = data_store_->WriteAt(disk, delta.loc.offset, buf.data(),
                                buf.size());
      if (!io.ok()) break;
      tails_[static_cast<size_t>(disk)] += buf.size();
      ++pages_written;
      if (mirror >= 0) {
        // Replica bytes ride along on the mirror disk's tail. Like the
        // base image's replicas they are untracked recovery copies — the
        // page map records primaries only.
        io = data_store_->WriteAt(mirror,
                                  tails_[static_cast<size_t>(mirror)],
                                  buf.data(), buf.size());
        if (!io.ok()) break;
        tails_[static_cast<size_t>(mirror)] += buf.size();
      }
    } else if (old == nullptr) {
      continue;  // created and freed within this op: no durable trace
    }
    // else: freed page, delta.loc stays span == 0
    if (old != nullptr) superseded.push_back(PageLocationKey(*old));
    commit.deltas.push_back(std::move(delta));
  }
  if (io.ok() && !commit.deltas.empty()) io = data_store_->Sync();
  if (io.ok() && !commit.deltas.empty()) io = wal_->AppendCommit(&commit);
  if (!io.ok()) {
    // The in-memory tree is ahead of durable state — poison the index so
    // the divergence can never be observed or widened. The on-disk bytes
    // (partial copy-on-write pages, a torn WAL tail) recover to the last
    // durable commit, exactly as after a power cut.
    failed_ = true;
    return io;
  }
  if (commit.deltas.empty()) return common::Status::OK();

  ++commits_;
  ++commits_since_checkpoint_;
  cow_pages_ += pages_written;
  if (m_wal_records_ != nullptr) {
    m_wal_records_->Increment();
    m_applied_->Increment();
    m_cow_pages_->Add(pages_written);
  }

  auto next = std::make_shared<IndexLayout>(*layout_);
  ApplyCommit(commit, next.get());
  layout_ = std::move(next);
  if (commit_cb_) commit_cb_(superseded, /*full_invalidate=*/false);
  return common::Status::OK();
}

common::Status MutableIndex::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  return CheckpointLocked(lock);
}

common::Status MutableIndex::CheckpointLocked(
    std::unique_lock<std::shared_mutex>& lock) {
  SQP_DCHECK(lock.owns_lock());
  (void)lock;
  if (failed_) {
    return common::Status::FailedPrecondition(
        "index poisoned by an earlier commit failure; reopen to recover");
  }
  // New traversals cannot start (we hold the writer lock); wait out the
  // ones already running off the current snapshot — after the flip the
  // facade points at the new generation and the old one's bytes go away.
  gate_.Advance();
  gate_.WaitForDrain();

  const uint64_t old_gen = generation_;
  const uint64_t next_gen = generation_ + 1;
  const uint64_t wal_bytes_before = wal_->tail_offset();

  // Write-aside: fold the live tree into a brand-new generation. Nothing
  // here touches the current generation, so any failure up to the flip
  // is a clean abort — drop the half-written generation and keep going.
  auto fresh = env_->CreateGeneration(next_gen, index_->num_disks());
  if (!fresh.ok()) {
    (void)env_->RemoveGeneration(next_gen);
    return fresh.status();
  }
  common::Status s = SaveIndex(*index_, fresh->data);
  if (!s.ok()) {
    fresh->owned.clear();
    (void)env_->RemoveGeneration(next_gen);
    return s;
  }

  // The flip. On error the pointer may or may not have landed (a sync
  // can fail after the bytes reached media) — re-read it to find out.
  s = env_->PublishCurrent(next_gen);
  if (!s.ok()) {
    auto cur = env_->ReadCurrent();
    if (!cur.ok()) {
      // Cannot even tell which generation is current: the index's view
      // may diverge from disk, so stop serving.
      failed_ = true;
      return cur.status();
    }
    if (*cur != next_gen) {
      fresh->owned.clear();
      (void)env_->RemoveGeneration(next_gen);
      return s;  // clean abort: still on the old generation, un-poisoned
    }
    // The flip landed despite the error; proceed as a success.
  }

  // Committed. Everything from here must leave the index consistent with
  // the new generation or poison it.
  auto relayout = ReadIndexLayout(*fresh->data);
  if (!relayout.ok()) {
    failed_ = true;
    return relayout.status();
  }
  GenerationStores old_stores = std::move(gen_stores_);
  gen_stores_ = std::move(*fresh);
  data_store_ = gen_stores_.data;
  wal_store_ = gen_stores_.wal;
  facade_.SetTarget(data_store_);
  // The new generation carries its own, empty log — the flip atomically
  // discarded every folded record with the old generation.
  wal_ = std::make_unique<WalWriter>(wal_store_, /*disk=*/0, /*next_lsn=*/1,
                                     /*tail_offset=*/0);
  tails_.assign(static_cast<size_t>(data_store_->num_disks()), 0);
  for (int d = 0; d < data_store_->num_disks(); ++d) {
    auto size = data_store_->SizeOf(d);
    if (!size.ok()) {
      failed_ = true;
      return size.status();
    }
    tails_[static_cast<size_t>(d)] = *size;
  }
  layout_ = std::make_shared<const IndexLayout>(std::move(*relayout));
  generation_ = next_gen;
  wal_bytes_reclaimed_ += wal_bytes_before;
  commits_since_checkpoint_ = 0;
  last_checkpoint_ = std::chrono::steady_clock::now();
  ++checkpoints_;
  if (m_checkpoints_ != nullptr) m_checkpoints_->Increment();

  // Reclaim the old generation. Failure just leaves an orphan for the
  // next open's garbage collection — never poisons.
  old_stores.owned.clear();  // close descriptors before removing files
  (void)env_->RemoveGeneration(old_gen);

  if (commit_cb_) commit_cb_({}, /*full_invalidate=*/true);
  return common::Status::OK();
}

void MutableIndex::StartCompaction(const CompactionPolicy& policy) {
  if (!PolicyEnabled(policy)) {
    StopCompaction();
    return;
  }
  std::unique_lock<std::mutex> lk(compact_mu_);
  compact_policy_ = policy;
  if (!compact_thread_.joinable()) {
    compact_stop_ = false;
    compact_kick_ = false;
    compact_thread_ = std::thread([this] { CompactionLoop(); });
  } else {
    compact_kick_ = true;
    compact_cv_.notify_one();
  }
}

void MutableIndex::StopCompaction() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lk(compact_mu_);
    if (!compact_thread_.joinable()) return;
    compact_stop_ = true;
    compact_cv_.notify_one();
    t = std::move(compact_thread_);
  }
  t.join();
  std::lock_guard<std::mutex> lk(compact_mu_);
  compact_stop_ = false;
}

void MutableIndex::CompactionLoop() {
  std::unique_lock<std::mutex> lk(compact_mu_);
  while (!compact_stop_) {
    // The periodic tick re-evaluates min_interval deferrals; commits set
    // the kick so a bursty writer is checked without waiting a full tick.
    compact_cv_.wait_for(lk, std::chrono::milliseconds(200),
                         [this] { return compact_stop_ || compact_kick_; });
    if (compact_stop_) break;
    compact_kick_ = false;
    CompactionPolicy policy = compact_policy_;
    lk.unlock();
    {
      bool due = false;
      {
        std::shared_lock<std::shared_mutex> rl(rw_mu_);
        if (!failed_) {
          const uint64_t bytes = wal_->tail_offset();
          const uint64_t records = commits_since_checkpoint_;
          due = (policy.max_wal_bytes > 0 && bytes > policy.max_wal_bytes) ||
                (policy.max_wal_records > 0 &&
                 records >= policy.max_wal_records);
          if (due && policy.min_interval_s > 0) {
            const auto since =
                std::chrono::steady_clock::now() - last_checkpoint_;
            due = std::chrono::duration<double>(since).count() >=
                  policy.min_interval_s;
          }
        }
      }
      if (due) {
        std::unique_lock<std::shared_mutex> wl(rw_mu_);
        // Re-check under the writer lock: an explicit checkpoint (or a
        // poisoning failure) may have raced the evaluation above.
        const bool still_due =
            !failed_ &&
            ((policy.max_wal_bytes > 0 &&
              wal_->tail_offset() > policy.max_wal_bytes) ||
             (policy.max_wal_records > 0 &&
              commits_since_checkpoint_ >= policy.max_wal_records));
        if (still_due) {
          common::Status s = CheckpointLocked(wl);
          if (s.ok()) {
            ++auto_checkpoints_;
          } else {
            std::fprintf(stderr, "background compaction failed: %s\n",
                         s.ToString().c_str());
          }
        }
      }
    }
    lk.lock();
  }
}

MutationStats MutableIndex::mutation_stats() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  MutationStats out;
  out.commits = commits_;
  out.cow_pages = cow_pages_;
  out.checkpoints = checkpoints_;
  out.auto_checkpoints = auto_checkpoints_;
  out.generation = generation_;
  out.wal_bytes = wal_ != nullptr ? wal_->tail_offset() : 0;
  out.wal_bytes_reclaimed = wal_bytes_reclaimed_;
  return out;
}

void MutableIndex::EnableMetrics(obs::MetricsRegistry* registry) {
  m_wal_records_ = registry->GetCounter("sqp_wal_records_total");
  m_applied_ = registry->GetCounter("sqp_wal_applied_total");
  m_replayed_ = registry->GetCounter("sqp_wal_replayed_total");
  m_torn_dropped_ = registry->GetCounter("sqp_wal_torn_tail_dropped_total");
  m_cow_pages_ = registry->GetCounter("sqp_cow_pages_total");
  m_checkpoints_ = registry->GetCounter("sqp_checkpoints_total");
  // Seed with what recovery found so the conservation identity
  //   wal_records == applied + replayed + torn_tail_dropped
  // holds from the first scrape.
  m_wal_records_->Add(recovery_.wal_records);
  m_replayed_->Add(recovery_.replayed);
  m_torn_dropped_->Add(recovery_.torn_tail_dropped);
  m_wal_records_->Add(commits_);
  m_applied_->Add(commits_);
  m_cow_pages_->Add(cow_pages_);
  m_checkpoints_->Add(checkpoints_);
}

}  // namespace sqp::storage
