#include "storage/mutable_index.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "storage/node_codec.h"
#include "storage/page_format.h"

namespace sqp::storage {
namespace {

using parallel::PagePlacement;
using parallel::ParallelRStarTree;
using rstar::Node;
using rstar::PageId;

// Collects every page an operation dirtied, allocated or freed. The net
// effect is resolved afterwards against the live tree (a page allocated
// and freed within one op needs no durable trace at all).
class TouchedSetRecorder : public rstar::MutationRecorder {
 public:
  void OnNodeDirtied(PageId id) override { touched_.insert(id); }
  void OnNodeAllocated(PageId id) override { touched_.insert(id); }
  void OnNodeFreed(PageId id) override { touched_.insert(id); }

  std::vector<PageId> Sorted() const {
    std::vector<PageId> out(touched_.begin(), touched_.end());
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_set<PageId> touched_;
};

// Applies one commit record's deltas to `layout` (page map, root, object
// count, live-page total). Shared by recovery and the post-commit
// snapshot swap.
void ApplyCommit(const WalCommit& commit, IndexLayout* layout) {
  for (const WalPageDelta& d : commit.deltas) {
    if (d.page >= layout->pages.size()) {
      layout->pages.resize(d.page + 1);
    }
    PageLocation& slot = layout->pages[d.page];
    const bool was_live = slot.span > 0;
    const bool now_live = d.loc.span > 0;
    if (was_live && !now_live) --layout->live_pages;
    if (!was_live && now_live) ++layout->live_pages;
    slot = now_live ? d.loc : PageLocation{};
  }
  layout->root = commit.root;
  layout->object_count = commit.object_count;
}

}  // namespace

common::Result<std::unique_ptr<MutableIndex>> MutableIndex::Open(
    PageStore* data_store, PageStore* wal_store) {
  SQP_CHECK(data_store != nullptr && wal_store != nullptr);
  auto scan = ScanWal(*wal_store, /*disk=*/0);
  if (!scan.ok()) return scan.status();

  auto layout_or = ReadIndexLayout(*data_store);
  if (!layout_or.ok()) return layout_or.status();
  IndexLayout layout = std::move(*layout_or);
  for (const WalCommit& commit : scan->records) {
    ApplyCommit(commit, &layout);
  }
  if (layout.root >= layout.pages.size() ||
      layout.pages[layout.root].span == 0) {
    return CorruptionError("recovered root page " +
                           std::to_string(layout.root) + " is not live");
  }

  // Rebuild the in-memory tree from the recovered page map, re-reading
  // and checksum-verifying every live node (base image or WAL-referenced
  // copy-on-write version alike).
  const int dim = layout.tree_config.dim;
  const size_t page_size = layout.page_size;
  std::vector<std::unique_ptr<Node>> nodes(layout.pages.size());
  std::vector<PagePlacement> placements;
  std::vector<uint8_t> buf;
  for (PageId id = 0; id < layout.pages.size(); ++id) {
    const PageLocation& loc = layout.pages[id];
    if (loc.span == 0) continue;
    buf.resize(static_cast<size_t>(loc.span) * page_size);
    SQP_RETURN_IF_ERROR(
        data_store->ReadAt(loc.disk, loc.offset, buf.data(), buf.size()));
    auto decoded = DecodeNode(buf.data(), loc.span, dim, page_size, id,
                              "recovered page " + std::to_string(id));
    if (!decoded.ok()) return decoded.status();
    nodes[id] = std::make_unique<Node>(std::move(*decoded));
    PagePlacement pl;
    pl.page = id;
    pl.disk = loc.disk;
    pl.mirror = loc.mirror;
    pl.cylinder = static_cast<int>(loc.cylinder);
    placements.push_back(pl);
  }

  auto index = std::make_unique<ParallelRStarTree>(layout.tree_config,
                                                   layout.decluster);
  SQP_RETURN_IF_ERROR(index->Restore(layout.root, layout.object_count,
                                     std::move(nodes), placements));

  auto mi = std::unique_ptr<MutableIndex>(new MutableIndex());
  mi->data_store_ = data_store;
  mi->wal_store_ = wal_store;
  mi->index_ = std::move(index);
  mi->wal_ = std::make_unique<WalWriter>(wal_store, /*disk=*/0,
                                         scan->next_lsn,
                                         scan->valid_end_offset);
  mi->tails_.resize(static_cast<size_t>(data_store->num_disks()));
  for (int d = 0; d < data_store->num_disks(); ++d) {
    auto size = data_store->SizeOf(d);
    if (!size.ok()) return size.status();
    mi->tails_[static_cast<size_t>(d)] = *size;
  }
  mi->layout_ = std::make_shared<const IndexLayout>(std::move(layout));
  mi->recovery_.replayed = scan->records.size();
  mi->recovery_.torn_tail_dropped = scan->torn_tail ? 1 : 0;
  mi->recovery_.wal_records =
      mi->recovery_.replayed + mi->recovery_.torn_tail_dropped;
  return mi;
}

common::Result<std::unique_ptr<MutableIndex>> MutableIndex::OpenFromDir(
    const std::string& dir) {
  auto data = FilePageStore::Open(dir);
  if (!data.ok()) return data.status();
  const std::string wal_dir = dir + "/wal";
  auto wal = FilePageStore::Open(wal_dir);
  if (!wal.ok()) {
    if (wal.status().code() != common::StatusCode::kNotFound) {
      return wal.status();
    }
    wal = FilePageStore::Create(wal_dir, /*num_disks=*/1);
    if (!wal.ok()) return wal.status();
  }
  auto mi = Open(data->get(), wal->get());
  if (!mi.ok()) return mi.status();
  (*mi)->owned_data_ = std::move(*data);
  (*mi)->owned_wal_ = std::move(*wal);
  return mi;
}

common::Status MutableIndex::Insert(const geometry::Point& p,
                                    rstar::ObjectId id) {
  return Mutate(p, id, /*insert=*/true);
}

common::Status MutableIndex::Delete(const geometry::Point& p,
                                    rstar::ObjectId id) {
  return Mutate(p, id, /*insert=*/false);
}

common::Status MutableIndex::Mutate(const geometry::Point& p,
                                    rstar::ObjectId id, bool insert) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  if (failed_) {
    return common::Status::FailedPrecondition(
        "index poisoned by an earlier commit failure; reopen to recover");
  }
  TouchedSetRecorder recorder;
  rstar::RStarTree& tree = index_->tree();
  tree.SetMutationRecorder(&recorder);
  common::Status op_status;
  if (insert) {
    tree.Insert(p, id);
  } else {
    op_status = tree.Delete(p, id);
  }
  tree.SetMutationRecorder(nullptr);
  if (!op_status.ok()) return op_status;  // e.g. NotFound: tree untouched
  return CommitLocked(recorder.Sorted());
}

common::Status MutableIndex::CommitLocked(
    const std::vector<rstar::PageId>& touched) {
  const IndexLayout& cur = *layout_;
  const int dim = cur.tree_config.dim;
  const size_t page_size = cur.page_size;

  WalCommit commit;
  commit.root = index_->tree().root();
  commit.object_count = index_->tree().size();
  std::vector<uint64_t> superseded;
  std::vector<uint8_t> buf;
  common::Status io;
  uint64_t pages_written = 0;
  for (PageId id : touched) {
    const PageLocation* old = nullptr;
    if (id < cur.pages.size() && cur.pages[id].span > 0) {
      old = &cur.pages[id];
    }
    WalPageDelta delta;
    delta.page = id;
    if (index_->placement().IsLive(id)) {
      // Copy-on-write: the node's new bytes go to its disk's file tail;
      // the base image and every older version stay byte-identical.
      const Node& n = index_->tree().node(id);
      const int disk = index_->placement().DiskOf(id);
      const int mirror = index_->placement().MirrorOf(id);
      buf.clear();
      EncodeNode(n, dim, page_size, &buf);
      delta.loc.disk = disk;
      delta.loc.offset = tails_[static_cast<size_t>(disk)];
      delta.loc.span = static_cast<uint32_t>(buf.size() / page_size);
      delta.loc.level = static_cast<uint8_t>(n.level);
      delta.loc.mirror = mirror;
      delta.loc.cylinder =
          static_cast<uint32_t>(index_->placement().CylinderOf(id));
      io = data_store_->WriteAt(disk, delta.loc.offset, buf.data(),
                                buf.size());
      if (!io.ok()) break;
      tails_[static_cast<size_t>(disk)] += buf.size();
      ++pages_written;
      if (mirror >= 0) {
        // Replica bytes ride along on the mirror disk's tail. Like the
        // base image's replicas they are untracked recovery copies — the
        // page map records primaries only.
        io = data_store_->WriteAt(mirror,
                                  tails_[static_cast<size_t>(mirror)],
                                  buf.data(), buf.size());
        if (!io.ok()) break;
        tails_[static_cast<size_t>(mirror)] += buf.size();
      }
    } else if (old == nullptr) {
      continue;  // created and freed within this op: no durable trace
    }
    // else: freed page, delta.loc stays span == 0
    if (old != nullptr) superseded.push_back(PageLocationKey(*old));
    commit.deltas.push_back(std::move(delta));
  }
  if (io.ok() && !commit.deltas.empty()) io = data_store_->Sync();
  if (io.ok() && !commit.deltas.empty()) io = wal_->AppendCommit(&commit);
  if (!io.ok()) {
    // The in-memory tree is ahead of durable state — poison the index so
    // the divergence can never be observed or widened. The on-disk bytes
    // (partial copy-on-write pages, a torn WAL tail) recover to the last
    // durable commit, exactly as after a power cut.
    failed_ = true;
    return io;
  }
  if (commit.deltas.empty()) return common::Status::OK();

  ++commits_;
  cow_pages_ += pages_written;
  if (m_wal_records_ != nullptr) {
    m_wal_records_->Increment();
    m_applied_->Increment();
    m_cow_pages_->Add(pages_written);
  }

  auto next = std::make_shared<IndexLayout>(*layout_);
  ApplyCommit(commit, next.get());
  layout_ = std::move(next);
  if (commit_cb_) commit_cb_(superseded, /*full_invalidate=*/false);
  return common::Status::OK();
}

common::Status MutableIndex::Checkpoint() {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  if (failed_) {
    return common::Status::FailedPrecondition(
        "index poisoned by an earlier commit failure; reopen to recover");
  }
  // New traversals cannot start (we hold the writer lock); wait out the
  // ones already running off the current snapshot, since rewriting the
  // base image reclaims the bytes under every old page location.
  gate_.Advance();
  gate_.WaitForDrain();

  common::Status s = SaveIndex(*index_, data_store_);
  if (s.ok()) s = wal_->Reset();
  common::Result<IndexLayout> relayout = s.ok()
                                             ? ReadIndexLayout(*data_store_)
                                             : common::Result<IndexLayout>(s);
  if (!relayout.ok()) {
    failed_ = true;
    return relayout.status();
  }
  for (int d = 0; d < data_store_->num_disks(); ++d) {
    auto size = data_store_->SizeOf(d);
    if (!size.ok()) {
      failed_ = true;
      return size.status();
    }
    tails_[static_cast<size_t>(d)] = *size;
  }
  layout_ = std::make_shared<const IndexLayout>(std::move(*relayout));
  ++checkpoints_;
  if (m_checkpoints_ != nullptr) m_checkpoints_->Increment();
  if (commit_cb_) commit_cb_({}, /*full_invalidate=*/true);
  return common::Status::OK();
}

MutationStats MutableIndex::mutation_stats() const {
  std::shared_lock<std::shared_mutex> lock(rw_mu_);
  MutationStats out;
  out.commits = commits_;
  out.cow_pages = cow_pages_;
  out.checkpoints = checkpoints_;
  return out;
}

void MutableIndex::EnableMetrics(obs::MetricsRegistry* registry) {
  m_wal_records_ = registry->GetCounter("sqp_wal_records_total");
  m_applied_ = registry->GetCounter("sqp_wal_applied_total");
  m_replayed_ = registry->GetCounter("sqp_wal_replayed_total");
  m_torn_dropped_ = registry->GetCounter("sqp_wal_torn_tail_dropped_total");
  m_cow_pages_ = registry->GetCounter("sqp_cow_pages_total");
  m_checkpoints_ = registry->GetCounter("sqp_checkpoints_total");
  // Seed with what recovery found so the conservation identity
  //   wal_records == applied + replayed + torn_tail_dropped
  // holds from the first scrape.
  m_wal_records_->Add(recovery_.wal_records);
  m_replayed_->Add(recovery_.replayed);
  m_torn_dropped_->Add(recovery_.torn_tail_dropped);
  m_wal_records_->Add(commits_);
  m_applied_->Add(commits_);
  m_cow_pages_->Add(cow_pages_);
  m_checkpoints_->Add(checkpoints_);
}

}  // namespace sqp::storage
