#include "storage/page_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <thread>

#include "common/check.h"

namespace sqp::storage {
namespace {

common::Status Errno(const std::string& op, const std::string& target) {
  return common::Status::Internal(op + " " + target + ": " +
                                  std::strerror(errno));
}

}  // namespace

std::vector<ReadRun> PlanReadRuns(std::span<const ReadRequest> requests) {
  std::vector<size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (requests[a].disk != requests[b].disk) {
      return requests[a].disk < requests[b].disk;
    }
    return requests[a].offset < requests[b].offset;
  });
  std::vector<ReadRun> runs;
  for (size_t i : order) {
    const ReadRequest& r = requests[i];
    if (!runs.empty() && runs.back().disk == r.disk &&
        runs.back().offset + runs.back().len == r.offset) {
      runs.back().len += r.len;
      runs.back().indices.push_back(i);
      continue;
    }
    ReadRun run;
    run.disk = r.disk;
    run.offset = r.offset;
    run.len = r.len;
    run.indices.push_back(i);
    runs.push_back(std::move(run));
  }
  return runs;
}

common::Status PageStore::ReadPages(
    std::span<const ReadRequest> requests) const {
  for (const ReadRequest& r : requests) {
    SQP_RETURN_IF_ERROR(ReadAt(r.disk, r.offset, r.buf, r.len));
  }
  return common::Status::OK();
}

// --- MemPageStore ---------------------------------------------------------

MemPageStore::MemPageStore(int num_disks) {
  SQP_CHECK(num_disks >= 1);
  disks_.resize(static_cast<size_t>(num_disks));
}

int MemPageStore::num_disks() const { return static_cast<int>(disks_.size()); }

common::Result<uint64_t> MemPageStore::SizeOf(int disk) const {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  return static_cast<uint64_t>(disks_[static_cast<size_t>(disk)].size());
}

common::Status MemPageStore::ReadAt(int disk, uint64_t offset, void* buf,
                                    size_t len) const {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  const auto& bytes = disks_[static_cast<size_t>(disk)];
  if (offset + len > bytes.size()) {
    return common::Status::OutOfRange(
        "read past end of disk " + std::to_string(disk) + " (offset " +
        std::to_string(offset) + " + " + std::to_string(len) + " > " +
        std::to_string(bytes.size()) + " bytes)");
  }
  std::memcpy(buf, bytes.data() + offset, len);
  return common::Status::OK();
}

common::Status MemPageStore::WriteAt(int disk, uint64_t offset,
                                     const void* buf, size_t len) {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  auto& bytes = disks_[static_cast<size_t>(disk)];
  if (offset + len > bytes.size()) bytes.resize(offset + len, 0);
  std::memcpy(bytes.data() + offset, buf, len);
  return common::Status::OK();
}

common::Status MemPageStore::Truncate(int disk) {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  disks_[static_cast<size_t>(disk)].clear();
  return common::Status::OK();
}

common::Status MemPageStore::Sync() { return common::Status::OK(); }

std::vector<uint8_t>& MemPageStore::disk_bytes(int disk) {
  SQP_CHECK(disk >= 0 && disk < num_disks());
  return disks_[static_cast<size_t>(disk)];
}

// --- FilePageStore --------------------------------------------------------

std::string FilePageStore::DiskFileName(int disk) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "disk-%04d.sqp", disk);
  return buf;
}

FilePageStore::FilePageStore(std::string dir, std::vector<int> fds)
    : dir_(std::move(dir)), fds_(std::move(fds)) {}

FilePageStore::~FilePageStore() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

common::Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& dir, int num_disks) {
  if (num_disks < 1) {
    return common::Status::InvalidArgument("num_disks must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return common::Status::Internal("mkdir " + dir + ": " + ec.message());
  }
  std::vector<int> fds;
  fds.reserve(static_cast<size_t>(num_disks));
  for (int d = 0; d < num_disks; ++d) {
    const std::string path = dir + "/" + DiskFileName(d);
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      common::Status s = Errno("open", path);
      for (int open_fd : fds) ::close(open_fd);
      return s;
    }
    fds.push_back(fd);
  }
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(dir, std::move(fds)));
}

common::Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& dir) {
  std::vector<int> fds;
  for (int d = 0;; ++d) {
    const std::string path = dir + "/" + DiskFileName(d);
    const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (fd < 0) {
      if (errno == ENOENT) break;
      common::Status s = Errno("open", path);
      for (int open_fd : fds) ::close(open_fd);
      return s;
    }
    fds.push_back(fd);
  }
  if (fds.empty()) {
    return common::Status::NotFound("no index files (" + DiskFileName(0) +
                                    " ...) under " + dir);
  }
  return std::unique_ptr<FilePageStore>(
      new FilePageStore(dir, std::move(fds)));
}

int FilePageStore::num_disks() const { return static_cast<int>(fds_.size()); }

common::Result<uint64_t> FilePageStore::SizeOf(int disk) const {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  struct stat st;
  if (::fstat(fds_[static_cast<size_t>(disk)], &st) != 0) {
    return Errno("fstat", DiskFileName(disk));
  }
  return static_cast<uint64_t>(st.st_size);
}

common::Status FilePageStore::ReadAt(int disk, uint64_t offset, void* buf,
                                     size_t len) const {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  uint8_t* out = static_cast<uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fds_[static_cast<size_t>(disk)], out + done,
                              len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread", DiskFileName(disk));
    }
    if (n == 0) {
      return common::Status::OutOfRange(
          "read past end of " + DiskFileName(disk) + " (offset " +
          std::to_string(offset) + " + " + std::to_string(len) +
          " bytes; file is shorter)");
    }
    done += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

common::Status FilePageStore::ReadPages(
    std::span<const ReadRequest> requests) const {
  for (const ReadRequest& r : requests) {
    if (r.disk < 0 || r.disk >= num_disks()) {
      return common::Status::InvalidArgument("no such disk");
    }
  }
  std::vector<uint8_t> scratch;
  for (const ReadRun& run : PlanReadRuns(requests)) {
    if (run.indices.size() == 1) {
      const ReadRequest& r = requests[run.indices[0]];
      SQP_RETURN_IF_ERROR(ReadAt(r.disk, r.offset, r.buf, r.len));
      continue;
    }
    scratch.resize(run.len);
    SQP_RETURN_IF_ERROR(
        ReadAt(run.disk, run.offset, scratch.data(), run.len));
    size_t pos = 0;
    for (size_t i : run.indices) {
      std::memcpy(requests[i].buf, scratch.data() + pos, requests[i].len);
      pos += requests[i].len;
    }
  }
  return common::Status::OK();
}

common::Status FilePageStore::WriteAt(int disk, uint64_t offset,
                                      const void* buf, size_t len) {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  const uint8_t* in = static_cast<const uint8_t*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fds_[static_cast<size_t>(disk)], in + done,
                               len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", DiskFileName(disk));
    }
    done += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

common::Status FilePageStore::Truncate(int disk) {
  if (disk < 0 || disk >= num_disks()) {
    return common::Status::InvalidArgument("no such disk");
  }
  if (::ftruncate(fds_[static_cast<size_t>(disk)], 0) != 0) {
    return Errno("ftruncate", DiskFileName(disk));
  }
  return common::Status::OK();
}

common::Status FilePageStore::Sync() {
  for (size_t d = 0; d < fds_.size(); ++d) {
    if (::fsync(fds_[d]) != 0) {
      return Errno("fsync", DiskFileName(static_cast<int>(d)));
    }
  }
  return common::Status::OK();
}

int FilePageStore::RawFd(int disk) const {
  if (disk < 0 || disk >= num_disks()) return -1;
  return fds_[static_cast<size_t>(disk)];
}

// --- PageStoreSlice -------------------------------------------------------

PageStoreSlice::PageStoreSlice(PageStore* base, int first_disk, int num_disks)
    : base_(base), first_disk_(first_disk), num_disks_(num_disks) {
  SQP_CHECK(base != nullptr);
  SQP_CHECK(first_disk >= 0 && num_disks >= 1);
  SQP_CHECK(first_disk + num_disks <= base->num_disks());
}

common::Status PageStoreSlice::CheckDisk(int disk) const {
  if (disk < 0 || disk >= num_disks_) {
    return common::Status::InvalidArgument("no such disk");
  }
  return common::Status::OK();
}

common::Result<uint64_t> PageStoreSlice::SizeOf(int disk) const {
  SQP_RETURN_IF_ERROR(CheckDisk(disk));
  return base_->SizeOf(first_disk_ + disk);
}

common::Status PageStoreSlice::ReadAt(int disk, uint64_t offset, void* buf,
                                      size_t len) const {
  SQP_RETURN_IF_ERROR(CheckDisk(disk));
  return base_->ReadAt(first_disk_ + disk, offset, buf, len);
}

common::Status PageStoreSlice::ReadPages(
    std::span<const ReadRequest> requests) const {
  std::vector<ReadRequest> remapped(requests.begin(), requests.end());
  for (ReadRequest& r : remapped) {
    SQP_RETURN_IF_ERROR(CheckDisk(r.disk));
    r.disk += first_disk_;
  }
  return base_->ReadPages(remapped);
}

common::Status PageStoreSlice::WriteAt(int disk, uint64_t offset,
                                       const void* buf, size_t len) {
  SQP_RETURN_IF_ERROR(CheckDisk(disk));
  return base_->WriteAt(first_disk_ + disk, offset, buf, len);
}

common::Status PageStoreSlice::Truncate(int disk) {
  SQP_RETURN_IF_ERROR(CheckDisk(disk));
  return base_->Truncate(first_disk_ + disk);
}

common::Status PageStoreSlice::Sync() { return base_->Sync(); }

// --- ThrottledPageStore ---------------------------------------------------

namespace {

void ChargeServiceTime(double seconds, int accesses) {
  if (seconds <= 0.0 || accesses <= 0) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds * accesses));
}

}  // namespace

common::Status ThrottledPageStore::ReadAt(int disk, uint64_t offset,
                                          void* buf, size_t len) const {
  ChargeServiceTime(read_latency_s_, 1);
  return base_->ReadAt(disk, offset, buf, len);
}

common::Status ThrottledPageStore::ReadPages(
    std::span<const ReadRequest> requests) const {
  // One service time per merged media access, matching what the backing
  // FilePageStore would issue.
  ChargeServiceTime(read_latency_s_,
                    static_cast<int>(PlanReadRuns(requests).size()));
  return base_->ReadPages(requests);
}

}  // namespace sqp::storage
