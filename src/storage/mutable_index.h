// Durable mutation of a stored index: write-ahead log + copy-on-write
// pages (docs/STORAGE.md).
//
// A MutableIndex wraps a saved index image (index_io.h) plus a one-disk
// write-ahead log and makes Insert/Delete crash-atomic:
//
//   1. The in-memory R*-tree applies the operation while a
//      rstar::MutationRecorder collects every page it touched.
//   2. Each surviving touched page is re-encoded and APPENDED at its
//      disk's file tail — never overwriting the base image or any earlier
//      version — and the data store is synced (copy-on-write).
//   3. One WAL commit record (new root, new object count, page-map
//      deltas) is appended and synced. This append IS the commit point:
//      crash before it and recovery sees the pre-op index; crash after
//      and recovery replays the record onto the base layout. A crash
//      mid-append leaves a torn tail the scanner provably drops, and the
//      orphan page bytes it may reference are dead garbage until the next
//      checkpoint reclaims them.
//   4. A fresh immutable IndexLayout snapshot is published; queries opened
//      against the old snapshot keep reading the old locations, whose
//      bytes step 2 never disturbed.
//
// Checkpoint() folds the log into a fresh base image (SaveIndex) and
// truncates the WAL; since rewriting the disks reclaims every old byte,
// it first drains in-flight readers through the EpochGate.
//
// Concurrency contract: one writer at a time (Insert/Delete/Checkpoint
// serialize on the writer lock). Readers snapshot under the shared lock:
//
//   shared_lock lk(idx.reader_mutex());
//   if (idx.failed()) ...;                     // poisoned by an I/O error
//   auto snap = idx.layout_snapshot_locked();  // immutable page map
//   uint64_t epoch = idx.gate().Enter();       // pin bytes vs checkpoint
//   ... construct traversal over idx.index().tree() ...
//   lk.unlock();            // traversal runs lock-free off `snap`
//   ...
//   idx.gate().Exit(epoch);
//
// If a commit-path write fails midway the in-memory tree is ahead of the
// durable state; the index poisons itself (failed()) and every later
// mutation or snapshot refuses, exactly as if the machine had died — the
// on-disk state recovers to the last durable commit.

#ifndef SQP_STORAGE_MUTABLE_INDEX_H_
#define SQP_STORAGE_MUTABLE_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "parallel/parallel_tree.h"
#include "storage/epoch_gate.h"
#include "storage/index_io.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace sqp::storage {

// What Open() found in the log (also mirrored into the metrics registry
// by EnableMetrics, where the conservation identity
//   sqp_wal_records_total == applied + replayed + torn_tail_dropped
// must hold on every scrape).
struct RecoveryStats {
  uint64_t wal_records = 0;        // valid records scanned
  uint64_t replayed = 0;           // records replayed onto the base layout
  uint64_t torn_tail_dropped = 0;  // 0 or 1: a crashed append's remnant
};

// Runtime mutation totals since Open().
struct MutationStats {
  uint64_t commits = 0;       // WAL records appended (== applied ops)
  uint64_t cow_pages = 0;     // node records written copy-on-write
  uint64_t checkpoints = 0;   // log foldings into a fresh base image
};

class MutableIndex {
 public:
  // After every commit: `superseded` holds the PageLocationKeys whose
  // bytes are no longer reachable from the NEW snapshot (older query
  // snapshots may still read them); `full_invalidate` marks a checkpoint,
  // after which no pre-checkpoint location is valid at all. Invoked with
  // the writer lock held — must not call back into the index.
  using CommitCallback =
      std::function<void(const std::vector<uint64_t>& superseded,
                         bool full_invalidate)>;

  // Opens the image in `data_store` (written by SaveIndex) and recovers
  // from the log on disk 0 of `wal_store`: valid records are replayed
  // onto the base layout, a torn tail is dropped, and the in-memory tree
  // is rebuilt from the recovered page map with every node re-read and
  // checksum-verified. An empty WAL disk is a clean start. Both stores
  // must outlive the index.
  static common::Result<std::unique_ptr<MutableIndex>> Open(
      PageStore* data_store, PageStore* wal_store);

  // Convenience: FilePageStore image under `dir`, one-disk WAL under
  // `dir`/wal (created when absent). The stores are owned by the index.
  static common::Result<std::unique_ptr<MutableIndex>> OpenFromDir(
      const std::string& dir);

  MutableIndex(const MutableIndex&) = delete;
  MutableIndex& operator=(const MutableIndex&) = delete;

  // Durable point insert. On return the mutation is committed: it
  // survives any later crash.
  common::Status Insert(const geometry::Point& p, rstar::ObjectId id);

  // Durable delete of (p, id). NotFound leaves index and log untouched.
  common::Status Delete(const geometry::Point& p, rstar::ObjectId id);

  // Drains readers, rewrites the base image from the live tree, truncates
  // the WAL and republishes the layout. Reclaims all orphaned page
  // versions; afterwards the WAL is empty.
  common::Status Checkpoint();

  // --- Reader protocol (see file comment) --------------------------------

  std::shared_mutex& reader_mutex() const { return rw_mu_; }
  // Requires reader_mutex() held (shared or exclusive).
  std::shared_ptr<const IndexLayout> layout_snapshot_locked() const {
    return layout_;
  }
  EpochGate& gate() const { return gate_; }
  bool failed() const { return failed_; }

  const parallel::ParallelRStarTree& index() const { return *index_; }
  PageStore* data_store() const { return data_store_; }
  int num_disks() const { return index_->num_disks(); }

  // Installs (or, with null, removes) the commit callback. Serializes
  // against in-flight commits on the writer lock, so after this returns
  // no further invocation of a previously installed callback can begin.
  void SetCommitCallback(CommitCallback cb) {
    std::unique_lock<std::shared_mutex> lock(rw_mu_);
    commit_cb_ = std::move(cb);
  }

  const RecoveryStats& recovery_stats() const { return recovery_; }
  MutationStats mutation_stats() const;

  // Registers sqp_wal_records_total, sqp_wal_applied_total,
  // sqp_wal_replayed_total, sqp_wal_torn_tail_dropped_total,
  // sqp_cow_pages_total and sqp_checkpoints_total on `registry`, seeding
  // the recovery counters with what Open() found. Call once, before the
  // index is shared across threads.
  void EnableMetrics(obs::MetricsRegistry* registry);

 private:
  MutableIndex() = default;

  common::Status Mutate(const geometry::Point& p, rstar::ObjectId id,
                        bool insert);
  common::Status CommitLocked(const std::vector<rstar::PageId>& touched);

  PageStore* data_store_ = nullptr;  // not owned (see owned_*)
  PageStore* wal_store_ = nullptr;
  std::unique_ptr<PageStore> owned_data_;
  std::unique_ptr<PageStore> owned_wal_;

  std::unique_ptr<parallel::ParallelRStarTree> index_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<uint64_t> tails_;  // per-data-disk append offset

  mutable std::shared_mutex rw_mu_;
  mutable EpochGate gate_;
  std::shared_ptr<const IndexLayout> layout_;  // swapped under rw_mu_
  bool failed_ = false;

  CommitCallback commit_cb_;
  RecoveryStats recovery_;
  uint64_t commits_ = 0;
  uint64_t cow_pages_ = 0;
  uint64_t checkpoints_ = 0;

  obs::Counter* m_wal_records_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_torn_dropped_ = nullptr;
  obs::Counter* m_cow_pages_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_MUTABLE_INDEX_H_
