// Durable mutation of a stored index: write-ahead log + copy-on-write
// pages + crash-atomic generation checkpoints (docs/STORAGE.md).
//
// A MutableIndex opens the CURRENT generation of a GenerationEnv — one
// saved index image (index_io.h) plus that generation's one-disk
// write-ahead log — and makes Insert/Delete crash-atomic:
//
//   1. The in-memory R*-tree applies the operation while a
//      rstar::MutationRecorder collects every page it touched.
//   2. Each surviving touched page is re-encoded and APPENDED at its
//      disk's file tail — never overwriting the base image or any earlier
//      version — and the data store is synced (copy-on-write).
//   3. One WAL commit record (new root, new object count, page-map
//      deltas) is appended and synced. This append IS the commit point:
//      crash before it and recovery sees the pre-op index; crash after
//      and recovery replays the record onto the base layout. A crash
//      mid-append leaves a torn tail the scanner provably drops, and the
//      orphan page bytes it may reference are dead garbage until the next
//      checkpoint reclaims them.
//   4. A fresh immutable IndexLayout snapshot is published; queries opened
//      against the old snapshot keep reading the old locations, whose
//      bytes step 2 never disturbed.
//
// Checkpoint() folds the log crash-atomically: it saves the live tree
// into a NEW generation (write-aside — the current generation's bytes
// are never touched), syncs it, then flips the env's CURRENT pointer.
// The flip is the commit point: a crash anywhere before it recovers to
// the old generation with its full WAL intact; a crash after it recovers
// to the folded image with an empty WAL (each generation carries its own
// log, so the flip atomically discards the folded records). The
// generation left behind either way is an orphan the next Open()
// garbage-collects. Readers are drained through the EpochGate first and
// the engine-facing data_store() is a SwitchablePageStore retargeted to
// the new generation under the writer lock.
//
// Background compaction: StartCompaction(policy) spawns a thread that
// calls Checkpoint() whenever the WAL outgrows the policy's byte/record
// thresholds (respecting min_interval). Off by default — explicit
// Checkpoint() calls remain valid and count separately from automatic
// ones in MutationStats.
//
// Cross-process exclusion: OpenFromDir takes a `LOCK` file in the index
// directory (lock_file.h) — a second opener, same process or not, gets
// kFailedPrecondition while the first holds it; stale locks from dead
// processes are broken automatically.
//
// Concurrency contract: one writer at a time (Insert/Delete/Checkpoint
// serialize on the writer lock). Readers snapshot under the shared lock:
//
//   shared_lock lk(idx.reader_mutex());
//   if (idx.failed()) ...;                     // poisoned by an I/O error
//   auto snap = idx.layout_snapshot_locked();  // immutable page map
//   uint64_t epoch = idx.gate().Enter();       // pin bytes vs checkpoint
//   ... construct traversal over idx.index().tree() ...
//   lk.unlock();            // traversal runs lock-free off `snap`
//   ...
//   idx.gate().Exit(epoch);
//
// If a commit-path write fails midway the in-memory tree is ahead of the
// durable state; the index poisons itself (failed()) and every later
// mutation or snapshot refuses, exactly as if the machine had died — the
// on-disk state recovers to the last durable commit. A checkpoint that
// fails BEFORE the pointer flip does NOT poison: the current generation
// was never touched, so the index simply keeps running on it.

#ifndef SQP_STORAGE_MUTABLE_INDEX_H_
#define SQP_STORAGE_MUTABLE_INDEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "parallel/parallel_tree.h"
#include "storage/epoch_gate.h"
#include "storage/generation.h"
#include "storage/index_io.h"
#include "storage/lock_file.h"
#include "storage/page_store.h"
#include "storage/wal.h"

namespace sqp::storage {

// What Open() found (also mirrored into the metrics registry by
// EnableMetrics, where the conservation identity
//   sqp_wal_records_total == applied + replayed + torn_tail_dropped
// must hold on every scrape).
struct RecoveryStats {
  uint64_t wal_records = 0;        // valid records scanned
  uint64_t replayed = 0;           // records replayed onto the base layout
  uint64_t torn_tail_dropped = 0;  // 0 or 1: a crashed append's remnant
  uint64_t generation = 0;         // the generation CURRENT named
  uint64_t orphan_generations_removed = 0;  // crashed-checkpoint leftovers
};

// Runtime mutation totals since Open().
struct MutationStats {
  uint64_t commits = 0;        // WAL records appended (== applied ops)
  uint64_t cow_pages = 0;      // node records written copy-on-write
  uint64_t checkpoints = 0;    // generation folds, explicit + automatic
  uint64_t auto_checkpoints = 0;  // of those, triggered by the policy
  uint64_t generation = 0;        // current generation number
  uint64_t wal_bytes = 0;         // bytes in the live generation's WAL
  uint64_t wal_bytes_reclaimed = 0;  // WAL bytes folded away, cumulative
};

// When the background thread folds the log. A zero threshold disables
// that trigger; all-zero (the default) disables compaction entirely.
struct CompactionPolicy {
  uint64_t max_wal_bytes = 0;    // fold when the WAL exceeds this size
  uint64_t max_wal_records = 0;  // ... or holds this many commit records
  double min_interval_s = 0;     // but never fold more often than this
};

class MutableIndex {
 public:
  // After every commit: `superseded` holds the PageLocationKeys whose
  // bytes are no longer reachable from the NEW snapshot (older query
  // snapshots may still read them); `full_invalidate` marks a checkpoint
  // (generation flip), after which no pre-checkpoint location is valid at
  // all. Invoked with the writer lock held — must not call back into the
  // index.
  using CommitCallback =
      std::function<void(const std::vector<uint64_t>& superseded,
                         bool full_invalidate)>;

  // Opens the generation named by the env's CURRENT pointer and recovers
  // from that generation's log: valid records are replayed onto the base
  // layout, a torn tail is dropped, and the in-memory tree is rebuilt
  // from the recovered page map with every node re-read and
  // checksum-verified. Orphan generations (leftovers of a crashed
  // checkpoint) are garbage-collected. The env must outlive the index.
  static common::Result<std::unique_ptr<MutableIndex>> Open(
      GenerationEnv* env);

  // Convenience: FileGenerationEnv over `dir`, guarded by `dir`/LOCK.
  // kFailedPrecondition when another live process (or this one) already
  // holds the directory open for writing.
  static common::Result<std::unique_ptr<MutableIndex>> OpenFromDir(
      const std::string& dir);

  ~MutableIndex();

  MutableIndex(const MutableIndex&) = delete;
  MutableIndex& operator=(const MutableIndex&) = delete;

  // Durable point insert. On return the mutation is committed: it
  // survives any later crash.
  common::Status Insert(const geometry::Point& p, rstar::ObjectId id);

  // Durable delete of (p, id). NotFound leaves index and log untouched.
  common::Status Delete(const geometry::Point& p, rstar::ObjectId id);

  // Drains readers, folds the log into a fresh generation and flips
  // CURRENT (see file comment). On success the WAL is empty and the old
  // generation's bytes are reclaimed; on failure before the flip the
  // index keeps running on the old generation un-poisoned.
  common::Status Checkpoint();

  // Starts (or reconfigures) the background compaction thread. No-op
  // policy (all thresholds zero) stops it.
  void StartCompaction(const CompactionPolicy& policy);
  // Stops the background thread; joins it. Safe when never started.
  void StopCompaction();

  // --- Reader protocol (see file comment) --------------------------------

  std::shared_mutex& reader_mutex() const { return rw_mu_; }
  // Requires reader_mutex() held (shared or exclusive).
  std::shared_ptr<const IndexLayout> layout_snapshot_locked() const {
    return layout_;
  }
  EpochGate& gate() const { return gate_; }
  bool failed() const { return failed_; }

  const parallel::ParallelRStarTree& index() const { return *index_; }
  // Stable across generation flips: a SwitchablePageStore the checkpoint
  // retargets under the writer lock. Engines capture this pointer once.
  PageStore* data_store() const { return &facade_; }
  int num_disks() const { return index_->num_disks(); }

  // Installs (or, with null, removes) the commit callback. Serializes
  // against in-flight commits on the writer lock, so after this returns
  // no further invocation of a previously installed callback can begin.
  void SetCommitCallback(CommitCallback cb) {
    std::unique_lock<std::shared_mutex> lock(rw_mu_);
    commit_cb_ = std::move(cb);
  }

  const RecoveryStats& recovery_stats() const { return recovery_; }
  MutationStats mutation_stats() const;

  // Registers sqp_wal_records_total, sqp_wal_applied_total,
  // sqp_wal_replayed_total, sqp_wal_torn_tail_dropped_total,
  // sqp_cow_pages_total and sqp_checkpoints_total on `registry`, seeding
  // the recovery counters with what Open() found. Call once, before the
  // index is shared across threads.
  void EnableMetrics(obs::MetricsRegistry* registry);

 private:
  MutableIndex() = default;

  common::Status Mutate(const geometry::Point& p, rstar::ObjectId id,
                        bool insert);
  common::Status CommitLocked(const std::vector<rstar::PageId>& touched);
  common::Status CheckpointLocked(std::unique_lock<std::shared_mutex>& lock);
  void CompactionLoop();
  // One policy evaluation; checkpoints when a threshold is exceeded.
  void MaybeCompact();

  GenerationEnv* env_ = nullptr;  // not owned (see owned_env_)
  std::unique_ptr<GenerationEnv> owned_env_;
  std::unique_ptr<LockFile> lock_;
  GenerationStores gen_stores_;
  uint64_t generation_ = 0;
  PageStore* data_store_ = nullptr;  // current generation's stores
  PageStore* wal_store_ = nullptr;
  mutable SwitchablePageStore facade_;  // what data_store() hands out

  std::unique_ptr<parallel::ParallelRStarTree> index_;
  std::unique_ptr<WalWriter> wal_;
  std::vector<uint64_t> tails_;  // per-data-disk append offset

  mutable std::shared_mutex rw_mu_;
  mutable EpochGate gate_;
  std::shared_ptr<const IndexLayout> layout_;  // swapped under rw_mu_
  bool failed_ = false;

  CommitCallback commit_cb_;
  RecoveryStats recovery_;
  uint64_t commits_ = 0;
  uint64_t cow_pages_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t auto_checkpoints_ = 0;
  uint64_t wal_bytes_reclaimed_ = 0;
  uint64_t commits_since_checkpoint_ = 0;
  // Epoch start, not now(): the first policy-triggered fold must not be
  // suppressed by min_interval when the index has never checkpointed.
  std::chrono::steady_clock::time_point last_checkpoint_{};

  // Background compaction. compact_mu_ orders only the thread's own
  // state (policy, stop/kick flags); the fold itself takes rw_mu_.
  std::mutex compact_mu_;
  std::condition_variable compact_cv_;
  std::thread compact_thread_;
  CompactionPolicy compact_policy_;
  bool compact_stop_ = false;
  bool compact_kick_ = false;

  obs::Counter* m_wal_records_ = nullptr;
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_replayed_ = nullptr;
  obs::Counter* m_torn_dropped_ = nullptr;
  obs::Counter* m_cow_pages_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_MUTABLE_INDEX_H_
