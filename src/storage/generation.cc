#include "storage/generation.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "storage/index_io.h"
#include "storage/page_format.h"

namespace sqp::storage {

namespace {

std::string GenName(uint64_t gen) { return "gen-" + std::to_string(gen); }

}  // namespace

// --- MemGenerationEnv ---------------------------------------------------

MemGenerationEnv::MemGenerationEnv(PageStore* base, int data_disks)
    : base_(base), data_disks_(data_disks) {
  int usable = base_->num_disks() - 1;  // disk 0 is the pointer log
  max_gens_ = usable > 0 ? static_cast<uint64_t>(usable / (data_disks_ + 1)) : 0;
}

int MemGenerationEnv::first_disk_of(uint64_t gen) const {
  return 1 + static_cast<int>((gen - 1) * (data_disks_ + 1));
}

int MemGenerationEnv::wal_disk_of(uint64_t gen) const {
  return first_disk_of(gen) + data_disks_;
}

common::Status MemGenerationEnv::CheckGen(uint64_t gen) const {
  if (gen == 0 || gen > max_gens_) {
    return common::Status::InvalidArgument(
        "generation " + std::to_string(gen) + " outside base store capacity (" +
        std::to_string(max_gens_) + " generations of " +
        std::to_string(data_disks_) + " data disks)");
  }
  return common::Status::OK();
}

common::Result<std::pair<uint64_t, uint64_t>> MemGenerationEnv::ScanPointerLog()
    const {
  auto size = base_->SizeOf(0);
  SQP_RETURN_IF_ERROR(size.status());
  uint64_t end = 0;
  uint64_t gen = 0;
  uint8_t rec[kCurrentRecordBytes];
  while (end + kCurrentRecordBytes <= *size) {
    SQP_RETURN_IF_ERROR(base_->ReadAt(0, end, rec, sizeof(rec)));
    if (GetU32(rec) != kCurrentMagic) break;
    uint32_t stored_crc = GetU32(rec + 4);
    uint8_t zeroed[kCurrentRecordBytes];
    std::memcpy(zeroed, rec, sizeof(rec));
    std::memset(zeroed + 4, 0, 4);
    if (Crc32c(zeroed, sizeof(zeroed)) != stored_crc) break;
    gen = GetU64(rec + 8);
    end += kCurrentRecordBytes;
  }
  return std::make_pair(end, gen);
}

common::Result<uint64_t> MemGenerationEnv::ReadCurrent() {
  auto scan = ScanPointerLog();
  SQP_RETURN_IF_ERROR(scan.status());
  if (scan->second == 0) {
    return common::Status::NotFound("no generation has been published");
  }
  return scan->second;
}

common::Status MemGenerationEnv::PublishCurrent(uint64_t gen) {
  SQP_RETURN_IF_ERROR(CheckGen(gen));
  auto scan = ScanPointerLog();
  SQP_RETURN_IF_ERROR(scan.status());
  uint8_t rec[kCurrentRecordBytes];
  PutU32(rec, kCurrentMagic);
  PutU32(rec + 4, 0);
  PutU64(rec + 8, gen);
  PutU32(rec + 4, Crc32c(rec, sizeof(rec)));
  // The append + sync is the flip: a dropped or torn write fails the CRC
  // gate on the next scan and the previous record keeps winning.
  SQP_RETURN_IF_ERROR(base_->WriteAt(0, scan->first, rec, sizeof(rec)));
  return base_->Sync();
}

common::Result<std::vector<uint64_t>> MemGenerationEnv::ListGenerations() {
  std::vector<uint64_t> gens;
  for (uint64_t g = 1; g <= max_gens_; ++g) {
    bool live = false;
    for (int d = first_disk_of(g); d <= wal_disk_of(g); ++d) {
      auto size = base_->SizeOf(d);
      SQP_RETURN_IF_ERROR(size.status());
      if (*size > 0) {
        live = true;
        break;
      }
    }
    if (live) gens.push_back(g);
  }
  return gens;
}

common::Result<GenerationStores> MemGenerationEnv::OpenGeneration(
    uint64_t gen) {
  SQP_RETURN_IF_ERROR(CheckGen(gen));
  auto data_size = base_->SizeOf(first_disk_of(gen));
  SQP_RETURN_IF_ERROR(data_size.status());
  if (*data_size == 0) {
    return common::Status::FailedPrecondition(
        "CURRENT names generation " + GenName(gen) +
        " but its disks are empty — the generation was lost or never "
        "written");
  }
  GenerationStores stores;
  auto data = std::make_unique<PageStoreSlice>(base_, first_disk_of(gen),
                                               data_disks_);
  auto wal = std::make_unique<PageStoreSlice>(base_, wal_disk_of(gen), 1);
  stores.data = data.get();
  stores.wal = wal.get();
  stores.owned.push_back(std::move(data));
  stores.owned.push_back(std::move(wal));
  return stores;
}

common::Result<GenerationStores> MemGenerationEnv::CreateGeneration(
    uint64_t gen, int data_disks) {
  SQP_RETURN_IF_ERROR(CheckGen(gen));
  if (data_disks != data_disks_) {
    return common::Status::InvalidArgument(
        "mem env was laid out for " + std::to_string(data_disks_) +
        " data disks per generation, asked for " + std::to_string(data_disks));
  }
  // Truncate only disks that actually hold bytes (remnants of a crashed
  // earlier attempt at this generation) so a clean create costs zero
  // write ops — keeping the kill-point space tight and deterministic.
  for (int d = first_disk_of(gen); d <= wal_disk_of(gen); ++d) {
    auto size = base_->SizeOf(d);
    SQP_RETURN_IF_ERROR(size.status());
    if (*size > 0) SQP_RETURN_IF_ERROR(base_->Truncate(d));
  }
  return OpenGenerationAfterCreate(gen);
}

common::Result<GenerationStores> MemGenerationEnv::OpenGenerationAfterCreate(
    uint64_t gen) {
  GenerationStores stores;
  auto data = std::make_unique<PageStoreSlice>(base_, first_disk_of(gen),
                                               data_disks_);
  auto wal = std::make_unique<PageStoreSlice>(base_, wal_disk_of(gen), 1);
  stores.data = data.get();
  stores.wal = wal.get();
  stores.owned.push_back(std::move(data));
  stores.owned.push_back(std::move(wal));
  return stores;
}

common::Status MemGenerationEnv::RemoveGeneration(uint64_t gen) {
  SQP_RETURN_IF_ERROR(CheckGen(gen));
  for (int d = first_disk_of(gen); d <= wal_disk_of(gen); ++d) {
    auto size = base_->SizeOf(d);
    SQP_RETURN_IF_ERROR(size.status());
    if (*size > 0) SQP_RETURN_IF_ERROR(base_->Truncate(d));
  }
  return common::Status::OK();
}

// --- FileGenerationEnv --------------------------------------------------

std::string FileGenerationEnv::GenerationPath(uint64_t gen) const {
  if (gen == 0) return dir_;
  return (std::filesystem::path(dir_) / GenName(gen)).string();
}

common::Result<uint64_t> FileGenerationEnv::ReadCurrent() {
  std::filesystem::path current = std::filesystem::path(dir_) / "CURRENT";
  std::error_code ec;
  if (std::filesystem::exists(current, ec)) {
    FILE* f = std::fopen(current.c_str(), "r");
    if (f == nullptr) {
      return common::Status::Unavailable("cannot open " + current.string() +
                                         ": " + std::strerror(errno));
    }
    char buf[64] = {};
    size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    uint64_t gen = 0;
    if (n == 0 || std::sscanf(buf, "gen-%llu",
                              reinterpret_cast<unsigned long long*>(&gen)) != 1 ||
        gen == 0) {
      return CorruptionError("malformed CURRENT pointer in " + dir_ + ": \"" +
                             std::string(buf, n) + "\"");
    }
    return gen;
  }
  // No pointer: a directory written by SaveIndexToDir before generations
  // existed has its disk files at the root — read it as generation 0.
  if (std::filesystem::exists(
          std::filesystem::path(dir_) / FilePageStore::DiskFileName(0), ec)) {
    return uint64_t{0};
  }
  return common::Status::NotFound("no CURRENT pointer or legacy index in " +
                                  dir_);
}

common::Status FileGenerationEnv::PublishCurrent(uint64_t gen) {
  if (gen == 0) {
    return common::Status::InvalidArgument(
        "generation 0 is the legacy layout and cannot be published");
  }
  std::filesystem::path dir(dir_);
  std::string tmp = (dir / "CURRENT.tmp").string();
  std::string final_path = (dir / "CURRENT").string();
  std::string content = GenName(gen) + "\n";

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::Unavailable("cannot create " + tmp + ": " +
                                       std::strerror(errno));
  }
  ssize_t written = ::write(fd, content.data(), content.size());
  if (written != static_cast<ssize_t>(content.size()) || ::fsync(fd) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return common::Status::Unavailable("cannot write " + tmp + ": " +
                                       std::strerror(err));
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return common::Status::Unavailable("cannot close " + tmp + ": " +
                                       std::strerror(errno));
  }
  // rename(2) is the atomic commit point; the directory fsync makes the
  // new name itself durable.
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    int err = errno;
    ::unlink(tmp.c_str());
    return common::Status::Unavailable("cannot rename " + tmp + " -> " +
                                       final_path + ": " +
                                       std::strerror(err));
  }
  int dfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    return common::Status::Unavailable("cannot open directory " + dir_ +
                                       " for fsync: " + std::strerror(errno));
  }
  if (::fsync(dfd) != 0) {
    int err = errno;
    ::close(dfd);
    return common::Status::Unavailable("cannot fsync directory " + dir_ +
                                       ": " + std::strerror(err));
  }
  ::close(dfd);
  return common::Status::OK();
}

common::Result<std::vector<uint64_t>> FileGenerationEnv::ListGenerations() {
  std::vector<uint64_t> gens;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) {
    return common::Status::Unavailable("cannot list " + dir_ + ": " +
                                       ec.message());
  }
  for (const auto& entry : it) {
    if (!entry.is_directory(ec)) continue;
    std::string name = entry.path().filename().string();
    unsigned long long gen = 0;
    char trailing = 0;
    if (std::sscanf(name.c_str(), "gen-%llu%c", &gen, &trailing) == 1 &&
        gen > 0) {
      gens.push_back(gen);
    }
  }
  if (std::filesystem::exists(
          std::filesystem::path(dir_) / FilePageStore::DiskFileName(0), ec)) {
    gens.push_back(0);  // legacy image at the directory root
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

common::Result<GenerationStores> FileGenerationEnv::OpenGeneration(
    uint64_t gen) {
  std::string path = GenerationPath(gen);
  std::error_code ec;
  if (gen != 0 && !std::filesystem::exists(path, ec)) {
    return common::Status::FailedPrecondition(
        "CURRENT names generation " + GenName(gen) + " but " + path +
        " is missing — the index directory was partially copied or its "
        "generation directory deleted");
  }
  auto data = FilePageStore::Open(path);
  if (!data.ok()) {
    if (gen != 0 && data.status().code() == common::StatusCode::kNotFound) {
      return common::Status::FailedPrecondition(
          "CURRENT names generation " + GenName(gen) + " but " + path +
          " holds no disk files — the generation is incomplete");
    }
    return data.status();
  }
  auto wal = FilePageStore::Open((std::filesystem::path(path) / "wal").string());
  if (!wal.ok()) {
    if (wal.status().code() != common::StatusCode::kNotFound) {
      return wal.status();
    }
    // A generation saved cold (or a legacy image never opened mutably)
    // has no log yet; create an empty one.
    wal = FilePageStore::Create((std::filesystem::path(path) / "wal").string(),
                                1);
    SQP_RETURN_IF_ERROR(wal.status());
  }
  GenerationStores stores;
  stores.data = data->get();
  stores.wal = wal->get();
  stores.owned.push_back(std::move(*data));
  stores.owned.push_back(std::move(*wal));
  return stores;
}

common::Result<GenerationStores> FileGenerationEnv::CreateGeneration(
    uint64_t gen, int data_disks) {
  if (gen == 0) {
    return common::Status::InvalidArgument(
        "generation 0 is the legacy layout and cannot be created");
  }
  std::string path = GenerationPath(gen);
  auto data = FilePageStore::Create(path, data_disks);  // truncates remnants
  SQP_RETURN_IF_ERROR(data.status());
  auto wal =
      FilePageStore::Create((std::filesystem::path(path) / "wal").string(), 1);
  SQP_RETURN_IF_ERROR(wal.status());
  GenerationStores stores;
  stores.data = data->get();
  stores.wal = wal->get();
  stores.owned.push_back(std::move(*data));
  stores.owned.push_back(std::move(*wal));
  return stores;
}

common::Status FileGenerationEnv::RemoveGeneration(uint64_t gen) {
  std::error_code ec;
  if (gen == 0) {
    // The legacy image lives at the directory root next to CURRENT and
    // gen-N/ subdirectories: remove only its pieces. Unlinking files a
    // live FilePageStore still holds open is fine on POSIX — the old
    // stores keep their descriptors until the checkpoint drops them.
    for (int d = 0;; ++d) {
      std::filesystem::path f =
          std::filesystem::path(dir_) / FilePageStore::DiskFileName(d);
      if (!std::filesystem::exists(f, ec)) break;
      std::filesystem::remove(f, ec);
      if (ec) {
        return common::Status::Unavailable("cannot remove " + f.string() +
                                           ": " + ec.message());
      }
    }
    std::filesystem::remove_all(std::filesystem::path(dir_) / "wal", ec);
    if (ec) {
      return common::Status::Unavailable("cannot remove legacy wal of " +
                                         dir_ + ": " + ec.message());
    }
    return common::Status::OK();
  }
  std::filesystem::remove_all(GenerationPath(gen), ec);
  if (ec) {
    return common::Status::Unavailable("cannot remove " + GenerationPath(gen) +
                                       ": " + ec.message());
  }
  return common::Status::OK();
}

// --- Bootstrap ----------------------------------------------------------

common::Status InitializeGenerations(GenerationEnv* env,
                                     const parallel::ParallelRStarTree& index) {
  auto current = env->ReadCurrent();
  if (current.ok()) {
    return common::Status::AlreadyExists(
        "environment already holds generation " +
        std::to_string(*current));
  }
  if (current.status().code() != common::StatusCode::kNotFound) {
    return current.status();
  }
  auto stores = env->CreateGeneration(1, index.num_disks());
  SQP_RETURN_IF_ERROR(stores.status());
  SQP_RETURN_IF_ERROR(SaveIndex(index, stores->data));
  return env->PublishCurrent(1);
}

}  // namespace sqp::storage
