// Cross-process index lock (docs/STORAGE.md).
//
// MutableIndex allows exactly one writer per index directory across all
// processes on the machine. The lock is a file created with
// O_CREAT | O_EXCL holding "pid boot_id\n"; creation succeeding IS the
// acquisition (atomic on POSIX), and the file is unlinked on release.
//
// A crash leaves the file behind, so acquisition distinguishes a live
// holder from a stale one: the lock is stale when its content does not
// parse, when the recorded boot id differs from this boot's
// /proc/sys/kernel/random/boot_id (the pid namespace was recycled
// wholesale), or when kill(pid, 0) says the process is gone. Stale locks
// are broken — logged to stderr — and acquisition retries; a live holder
// is a typed kFailedPrecondition so callers and the CLI can present
// "index locked by pid N" rather than a generic failure.

#ifndef SQP_STORAGE_LOCK_FILE_H_
#define SQP_STORAGE_LOCK_FILE_H_

#include <memory>
#include <string>

#include "common/status.h"

namespace sqp::storage {

class LockFile {
 public:
  // Acquires `path`, breaking stale locks. kFailedPrecondition when a
  // live process holds it; Unavailable on repeated races or I/O errors.
  static common::Result<std::unique_ptr<LockFile>> Acquire(
      const std::string& path);

  // Releases the lock (closes and unlinks).
  ~LockFile();

  LockFile(const LockFile&) = delete;
  LockFile& operator=(const LockFile&) = delete;

  const std::string& path() const { return path_; }
  // Whether acquisition had to break a stale lock left by a dead process.
  bool broke_stale() const { return broke_stale_; }

 private:
  LockFile(std::string path, int fd, bool broke_stale)
      : path_(std::move(path)), fd_(fd), broke_stale_(broke_stale) {}

  std::string path_;
  int fd_;
  bool broke_stale_;
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_LOCK_FILE_H_
