#include "storage/node_codec.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace sqp::storage {

size_t EntryRecordBytes(int dim) { return 8 * static_cast<size_t>(dim) + 12; }

size_t EntriesPerPage(int dim, size_t page_size) {
  SQP_CHECK(page_size > kPageHeaderBytes + EntryRecordBytes(dim));
  return (page_size - kPageHeaderBytes) / EntryRecordBytes(dim);
}

uint32_t NodeSpan(const rstar::Node& node, int dim, size_t page_size) {
  const size_t per_page = EntriesPerPage(dim, page_size);
  const size_t span = (node.entries.size() + per_page - 1) / per_page;
  return span < 1 ? 1 : static_cast<uint32_t>(span);
}

void EncodeNode(const rstar::Node& node, int dim, size_t page_size,
                std::vector<uint8_t>* out) {
  const size_t per_page = EntriesPerPage(dim, page_size);
  const size_t record_bytes = EntryRecordBytes(dim);
  const uint32_t span = NodeSpan(node, dim, page_size);
  const size_t base = out->size();
  out->resize(base + static_cast<size_t>(span) * page_size, 0);

  size_t next_entry = 0;
  for (uint32_t seq = 0; seq < span; ++seq) {
    uint8_t* page = out->data() + base + static_cast<size_t>(seq) * page_size;
    const size_t in_page =
        std::min(per_page, node.entries.size() - next_entry);
    PageHeader h;
    h.type = seq == 0 ? PageType::kNode : PageType::kNodeContinuation;
    h.level = static_cast<uint8_t>(node.level);
    h.page_id = node.id;
    h.entry_count = static_cast<uint32_t>(in_page);
    h.total_entries = static_cast<uint32_t>(node.entries.size());
    h.span = static_cast<uint16_t>(span);
    h.seq = static_cast<uint16_t>(seq);
    WritePageHeader(h, page);

    uint8_t* rec = page + kPageHeaderBytes;
    for (size_t i = 0; i < in_page; ++i, ++next_entry, rec += record_bytes) {
      const rstar::Entry& e = node.entries[next_entry];
      SQP_DCHECK(e.mbr.dim() == dim);
      for (int c = 0; c < dim; ++c) PutF32(rec + 4 * c, e.mbr.lo()[c]);
      for (int c = 0; c < dim; ++c) {
        PutF32(rec + 4 * (dim + c), e.mbr.hi()[c]);
      }
      const uint64_t ref = node.IsLeaf() ? e.object
                                         : static_cast<uint64_t>(e.child);
      PutU64(rec + 8 * dim, ref);
      PutU32(rec + 8 * dim + 8, e.count);
    }
    SealPage(page, page_size);
  }
  SQP_DCHECK(next_entry == node.entries.size());
}

common::Result<rstar::Node> DecodeNode(const uint8_t* data, uint32_t span,
                                       int dim, size_t page_size,
                                       rstar::PageId expected_id,
                                       const std::string& what) {
  const size_t per_page = EntriesPerPage(dim, page_size);
  const size_t record_bytes = EntryRecordBytes(dim);
  if (span < 1) return CorruptionError(what + ": zero-page node record");

  rstar::Node node;
  node.id = expected_id;
  uint32_t total_entries = 0;
  for (uint32_t seq = 0; seq < span; ++seq) {
    const uint8_t* page = data + static_cast<size_t>(seq) * page_size;
    const PageType expected_type =
        seq == 0 ? PageType::kNode : PageType::kNodeContinuation;
    SQP_RETURN_IF_ERROR(CheckPage(page, page_size, expected_type, what));
    const PageHeader h = ReadPageHeader(page);
    if (h.page_id != expected_id || h.span != span || h.seq != seq) {
      return CorruptionError(what + ": node record chain mismatch (page " +
                             std::to_string(h.page_id) + " seq " +
                             std::to_string(h.seq) + "/" +
                             std::to_string(h.span) + ")");
    }
    if (seq == 0) {
      // Bound before reserving: a crafted-but-checksummed header could
      // otherwise demand a multi-gigabyte allocation.
      if (h.total_entries > static_cast<uint64_t>(span) * per_page) {
        return CorruptionError(
            what + ": total entry count " + std::to_string(h.total_entries) +
            " exceeds record capacity " +
            std::to_string(static_cast<uint64_t>(span) * per_page));
      }
      node.level = h.level;
      total_entries = h.total_entries;
      node.entries.reserve(h.total_entries);
    } else if (h.level != node.level || h.total_entries != total_entries) {
      return CorruptionError(
          what + ": header fields differ across node pages");
    }
    if (h.entry_count > per_page ||
        (seq + 1 < span && h.entry_count != per_page)) {
      return CorruptionError(what + ": bad per-page entry count");
    }

    const uint8_t* rec = page + kPageHeaderBytes;
    for (uint32_t i = 0; i < h.entry_count; ++i, rec += record_bytes) {
      std::vector<geometry::Coord> lo(static_cast<size_t>(dim));
      std::vector<geometry::Coord> hi(static_cast<size_t>(dim));
      for (int c = 0; c < dim; ++c) {
        lo[static_cast<size_t>(c)] = GetF32(rec + 4 * c);
        hi[static_cast<size_t>(c)] = GetF32(rec + 4 * (dim + c));
      }
      for (int c = 0; c < dim; ++c) {
        const float l = lo[static_cast<size_t>(c)];
        const float u = hi[static_cast<size_t>(c)];
        if (std::isnan(l) || std::isnan(u) || l > u) {
          return CorruptionError(what + ": invalid MBR in entry " +
                                 std::to_string(node.entries.size()));
        }
      }
      rstar::Entry e;
      e.mbr = geometry::Rect(geometry::Point::FromVector(std::move(lo)),
                             geometry::Point::FromVector(std::move(hi)));
      const uint64_t ref = GetU64(rec + 8 * dim);
      e.count = GetU32(rec + 8 * dim + 8);
      if (node.IsLeaf()) {
        e.object = ref;
      } else {
        if (ref >= rstar::kInvalidPage) {
          return CorruptionError(what + ": child pointer " +
                                 std::to_string(ref) +
                                 " out of PageId range");
        }
        e.child = static_cast<rstar::PageId>(ref);
      }
      node.entries.push_back(std::move(e));
    }
  }

  const PageHeader first = ReadPageHeader(data);
  if (node.entries.size() != first.total_entries) {
    return CorruptionError(
        what + ": entry count mismatch (header says " +
        std::to_string(first.total_entries) + ", decoded " +
        std::to_string(node.entries.size()) + ")");
  }
  return node;
}

}  // namespace sqp::storage
