#include "storage/index_io.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "storage/node_codec.h"
#include "storage/page_format.h"

namespace sqp::storage {
namespace {

using parallel::DeclusterConfig;
using parallel::DeclusterPolicy;
using parallel::PagePlacement;
using parallel::ParallelRStarTree;
using rstar::Node;
using rstar::PageId;
using rstar::TreeConfig;

// Superblock payload layout (offsets from the start of the page). The
// fields needed to bootstrap a reader — page size and disk count — sit
// first so they can be parsed from a fixed-size prefix before the page
// size is known.
constexpr size_t kSbPageSize = 40;
constexpr size_t kSbNumDisks = 44;
constexpr size_t kSbDiskIndex = 48;
constexpr size_t kSbDim = 52;
constexpr size_t kSbMaxEntriesOverride = 56;
constexpr size_t kSbPageSlots = 60;
constexpr size_t kSbRoot = 64;
constexpr size_t kSbDirPageCount = 68;
constexpr size_t kSbObjectCount = 72;
constexpr size_t kSbLivePages = 80;
constexpr size_t kSbMinFill = 88;
constexpr size_t kSbReinsert = 96;
constexpr size_t kSbSupernodeOverlap = 104;
constexpr size_t kSbProximityQuerySide = 112;
constexpr size_t kSbSeed = 120;
constexpr size_t kSbNumCylinders = 128;
constexpr size_t kSbMaxSupernodePages = 132;
constexpr size_t kSbPolicy = 136;
constexpr size_t kSbForcedReinsert = 137;
constexpr size_t kSbAllowSupernodes = 138;
constexpr size_t kSbMirrored = 139;

// The bootstrap prefix must reach kSbNumDisks + 4.
constexpr size_t kBootstrapBytes = 64;

// Directory record layout (20 bytes).
constexpr size_t kDirPageId = 0;
constexpr size_t kDirLocalIndex = 4;
constexpr size_t kDirCylinder = 8;
constexpr size_t kDirMirror = 12;
constexpr size_t kDirSpan = 16;
constexpr size_t kDirFlags = 18;
constexpr size_t kDirLevel = 19;
constexpr size_t kDirRecordBytes = 20;
constexpr uint8_t kDirFlagReplica = 1;

size_t DirRecordsPerPage(size_t page_size) {
  return (page_size - kPageHeaderBytes) / kDirRecordBytes;
}

std::string DiskTag(int disk) { return "disk " + std::to_string(disk); }

// Everything the superblock carries.
struct Superblock {
  TreeConfig tree;
  DeclusterConfig decluster;
  uint32_t page_size = 0;
  uint32_t disk_index = 0;
  uint32_t page_slots = 0;
  PageId root = rstar::kInvalidPage;
  uint32_t dir_page_count = 0;
  uint64_t object_count = 0;
  uint64_t live_pages = 0;
};

void EncodeSuperblock(const Superblock& sb, uint8_t* page) {
  PageHeader h;
  h.type = PageType::kSuperblock;
  WritePageHeader(h, page);
  PutU32(page + kSbPageSize, sb.page_size);
  PutU32(page + kSbNumDisks,
         static_cast<uint32_t>(sb.decluster.num_disks));
  PutU32(page + kSbDiskIndex, sb.disk_index);
  PutU32(page + kSbDim, static_cast<uint32_t>(sb.tree.dim));
  PutU32(page + kSbMaxEntriesOverride,
         static_cast<uint32_t>(sb.tree.max_entries_override));
  PutU32(page + kSbPageSlots, sb.page_slots);
  PutU32(page + kSbRoot, sb.root);
  PutU32(page + kSbDirPageCount, sb.dir_page_count);
  PutU64(page + kSbObjectCount, sb.object_count);
  PutU64(page + kSbLivePages, sb.live_pages);
  PutF64(page + kSbMinFill, sb.tree.min_fill_fraction);
  PutF64(page + kSbReinsert, sb.tree.reinsert_fraction);
  PutF64(page + kSbSupernodeOverlap, sb.tree.supernode_overlap_threshold);
  PutF64(page + kSbProximityQuerySide, sb.decluster.proximity_query_side);
  PutU64(page + kSbSeed, sb.decluster.seed);
  PutU32(page + kSbNumCylinders,
         static_cast<uint32_t>(sb.decluster.num_cylinders));
  PutU32(page + kSbMaxSupernodePages,
         static_cast<uint32_t>(sb.tree.max_supernode_pages));
  page[kSbPolicy] = static_cast<uint8_t>(sb.decluster.policy);
  page[kSbForcedReinsert] = sb.tree.forced_reinsert ? 1 : 0;
  page[kSbAllowSupernodes] = sb.tree.allow_supernodes ? 1 : 0;
  page[kSbMirrored] = sb.decluster.mirrored ? 1 : 0;
  SealPage(page, sb.page_size);
}

// Parses a checksum-verified superblock page and soft-validates every
// field that TreeConfig::Validate()/DiskAssigner would otherwise enforce
// with a process-aborting CHECK, so a crafted-but-checksummed file still
// fails with a Status instead of a crash.
common::Status DecodeSuperblock(const uint8_t* page, size_t page_size,
                                const std::string& what, Superblock* sb) {
  sb->page_size = GetU32(page + kSbPageSize);
  if (sb->page_size != page_size) {
    return CorruptionError(what + ": page size field " +
                           std::to_string(sb->page_size) +
                           " does not match file layout");
  }
  sb->decluster.num_disks = static_cast<int>(GetU32(page + kSbNumDisks));
  sb->disk_index = GetU32(page + kSbDiskIndex);
  sb->tree.dim = static_cast<int>(GetU32(page + kSbDim));
  sb->tree.page_size_bytes = static_cast<int>(sb->page_size);
  sb->tree.max_entries_override =
      static_cast<int>(GetU32(page + kSbMaxEntriesOverride));
  sb->page_slots = GetU32(page + kSbPageSlots);
  sb->root = GetU32(page + kSbRoot);
  sb->dir_page_count = GetU32(page + kSbDirPageCount);
  sb->object_count = GetU64(page + kSbObjectCount);
  sb->live_pages = GetU64(page + kSbLivePages);
  sb->tree.min_fill_fraction = GetF64(page + kSbMinFill);
  sb->tree.reinsert_fraction = GetF64(page + kSbReinsert);
  sb->tree.supernode_overlap_threshold =
      GetF64(page + kSbSupernodeOverlap);
  sb->decluster.proximity_query_side =
      GetF64(page + kSbProximityQuerySide);
  sb->decluster.seed = GetU64(page + kSbSeed);
  sb->decluster.num_cylinders =
      static_cast<int>(GetU32(page + kSbNumCylinders));
  sb->tree.max_supernode_pages =
      static_cast<int>(GetU32(page + kSbMaxSupernodePages));
  sb->decluster.policy = static_cast<DeclusterPolicy>(page[kSbPolicy]);
  sb->tree.forced_reinsert = page[kSbForcedReinsert] != 0;
  sb->tree.allow_supernodes = page[kSbAllowSupernodes] != 0;
  sb->decluster.mirrored = page[kSbMirrored] != 0;

  const TreeConfig& t = sb->tree;
  const DeclusterConfig& d = sb->decluster;
  const bool config_ok =
      t.dim >= 1 && t.dim <= 4096 &&
      (t.max_entries_override == 0 || t.max_entries_override >= 4) &&
      t.min_fill_fraction > 0.0 && t.min_fill_fraction <= 0.5 &&
      t.reinsert_fraction > 0.0 && t.reinsert_fraction < 1.0 &&
      t.max_supernode_pages >= 1 &&
      t.supernode_overlap_threshold >= 0.0 &&
      t.supernode_overlap_threshold <= 1.0 && d.num_disks >= 1 &&
      d.num_cylinders >= 1 && (!d.mirrored || d.num_disks >= 2) &&
      page[kSbPolicy] <= static_cast<uint8_t>(DeclusterPolicy::kAreaBalance);
  if (!config_ok) {
    return CorruptionError(what + ": configuration fields out of range");
  }
  if (sb->page_size < static_cast<uint32_t>(kPageHeaderBytes) +
                          EntryRecordBytes(t.dim) ||
      sb->page_size < 256) {
    return CorruptionError(what + ": page size too small for dim " +
                           std::to_string(t.dim));
  }
  if (sb->page_slots < 1 || sb->root >= sb->page_slots ||
      sb->live_pages < 1 || sb->live_pages > sb->page_slots) {
    return CorruptionError(what + ": tree shape fields out of range");
  }
  return common::Status::OK();
}

// Upper plausibility bound for the superblock's page_slots field, derived
// from the store's actual file sizes. Every live page occupies at least
// one page in some disk file, and our writer never leaves the id space
// more than modestly sparse; without this bound a crafted-but-checksummed
// superblock could demand a page_slots-sized allocation of tens of
// gigabytes before any directory record is read.
common::Result<uint64_t> MaxPlausiblePageSlots(const PageStore& store,
                                               size_t page_size) {
  uint64_t total_pages = 0;
  for (int d = 0; d < store.num_disks(); ++d) {
    auto size = store.SizeOf(d);
    if (!size.ok()) return size.status();
    total_pages += *size / page_size;
  }
  return 64 * total_pages + 1024;
}

common::Status CheckPageSlotsPlausible(const Superblock& sb,
                                       uint64_t max_slots,
                                       const std::string& what) {
  if (sb.page_slots > max_slots) {
    return CorruptionError(
        what + ": page_slots " + std::to_string(sb.page_slots) +
        " implausible for the store's file sizes (limit " +
        std::to_string(max_slots) + ")");
  }
  return common::Status::OK();
}

bool SuperblocksAgree(const Superblock& a, const Superblock& b) {
  return a.page_size == b.page_size && a.page_slots == b.page_slots &&
         a.root == b.root && a.object_count == b.object_count &&
         a.live_pages == b.live_pages && a.tree.dim == b.tree.dim &&
         a.tree.max_entries_override == b.tree.max_entries_override &&
         a.tree.min_fill_fraction == b.tree.min_fill_fraction &&
         a.tree.reinsert_fraction == b.tree.reinsert_fraction &&
         a.tree.forced_reinsert == b.tree.forced_reinsert &&
         a.tree.allow_supernodes == b.tree.allow_supernodes &&
         a.tree.supernode_overlap_threshold ==
             b.tree.supernode_overlap_threshold &&
         a.tree.max_supernode_pages == b.tree.max_supernode_pages &&
         a.decluster.num_disks == b.decluster.num_disks &&
         a.decluster.policy == b.decluster.policy &&
         a.decluster.proximity_query_side ==
             b.decluster.proximity_query_side &&
         a.decluster.num_cylinders == b.decluster.num_cylinders &&
         a.decluster.seed == b.decluster.seed &&
         a.decluster.mirrored == b.decluster.mirrored;
}

// One node record scheduled for a disk file.
struct RecordPlan {
  PageId page = rstar::kInvalidPage;
  uint32_t span = 1;
  uint32_t local_index = 0;  // filled in during layout
  int mirror = -1;
  int cylinder = 0;
  uint8_t level = 0;
  bool replica = false;
};

// A directory record parsed back from a disk file.
struct DirRecord {
  PageId page = rstar::kInvalidPage;
  uint32_t local_index = 0;
  uint32_t cylinder = 0;
  int32_t mirror = -1;
  uint16_t span = 0;
  uint8_t flags = 0;
  uint8_t level = 0;
};

// Reads exactly `len` bytes, mapping a short read to a corruption error
// (a well-formed index never points past the end of its own files).
common::Status ReadExact(const PageStore& store, int disk, uint64_t offset,
                         void* buf, size_t len, const std::string& what) {
  common::Status s = store.ReadAt(disk, offset, buf, len);
  if (s.code() == common::StatusCode::kOutOfRange) {
    return CorruptionError(what + ": file truncated (" + s.message() + ")");
  }
  return s;
}

// Reads disk `d`'s checksum-verified superblock into `sb` and its
// directory records into `records`. `page` is a page_size scratch buffer.
common::Status ReadDiskDirectory(const PageStore& store, int d,
                                 size_t page_size, uint8_t* page,
                                 Superblock* sb,
                                 std::vector<DirRecord>* records) {
  const std::string sb_tag = DiskTag(d) + " superblock";
  SQP_RETURN_IF_ERROR(ReadExact(store, d, 0, page, page_size, sb_tag));
  SQP_RETURN_IF_ERROR(
      CheckPage(page, page_size, PageType::kSuperblock, sb_tag));
  SQP_RETURN_IF_ERROR(DecodeSuperblock(page, page_size, sb_tag, sb));
  if (sb->disk_index != static_cast<uint32_t>(d)) {
    return CorruptionError(sb_tag + ": claims to be disk " +
                           std::to_string(sb->disk_index) +
                           " (files renamed or shuffled?)");
  }

  const size_t dir_per_page = DirRecordsPerPage(page_size);
  for (uint32_t p = 0; p < sb->dir_page_count; ++p) {
    const std::string dir_tag =
        DiskTag(d) + " directory page " + std::to_string(p);
    SQP_RETURN_IF_ERROR(
        ReadExact(store, d, (1 + p) * page_size, page, page_size, dir_tag));
    SQP_RETURN_IF_ERROR(
        CheckPage(page, page_size, PageType::kDirectory, dir_tag));
    const PageHeader h = ReadPageHeader(page);
    if (h.span != sb->dir_page_count || h.seq != p ||
        h.entry_count > dir_per_page) {
      return CorruptionError(dir_tag + ": directory chain mismatch");
    }
    const uint8_t* rec = page + kPageHeaderBytes;
    for (uint32_t i = 0; i < h.entry_count; ++i, rec += kDirRecordBytes) {
      DirRecord r;
      r.page = GetU32(rec + kDirPageId);
      r.local_index = GetU32(rec + kDirLocalIndex);
      r.cylinder = GetU32(rec + kDirCylinder);
      r.mirror = GetI32(rec + kDirMirror);
      r.span = GetU16(rec + kDirSpan);
      r.flags = rec[kDirFlags];
      r.level = rec[kDirLevel];
      records->push_back(r);
    }
  }
  return common::Status::OK();
}

// Bootstraps the page size and disk count from disk 0's superblock prefix,
// validating magic and format version.
common::Status ReadBootstrap(const PageStore& store, size_t* page_size,
                             int* num_disks) {
  uint8_t prefix[kBootstrapBytes];
  SQP_RETURN_IF_ERROR(ReadExact(store, 0, 0, prefix, sizeof(prefix),
                                "disk 0 superblock"));
  if (GetU32(prefix) != kPageMagic) {
    return CorruptionError("disk 0 superblock: bad page magic (not an sqp "
                           "index file?)");
  }
  const uint16_t version = GetU16(prefix + 4);
  if (version != kFormatVersion) {
    return common::Status::InvalidArgument(
        "disk 0 superblock: unsupported format version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kFormatVersion) +
        "; re-save the index with a matching build)");
  }
  const uint32_t page_size_u32 = GetU32(prefix + kSbPageSize);
  if (page_size_u32 < 256 || page_size_u32 > (1u << 24)) {
    return CorruptionError("disk 0 superblock: implausible page size " +
                           std::to_string(page_size_u32));
  }
  *page_size = page_size_u32;
  *num_disks = static_cast<int>(GetU32(prefix + kSbNumDisks));
  if (*num_disks != store.num_disks()) {
    return CorruptionError(
        "superblock names " + std::to_string(*num_disks) +
        " disks but the store has " + std::to_string(store.num_disks()) +
        " (missing or extra disk files?)");
  }
  return common::Status::OK();
}

// Emission ranks of the hot-neighbor placement (SaveIndexOptions). A
// breadth-first walk from the root emits every node's children as one
// consecutive run, ordered by descending subtree object count (Entry.count
// — derivable from the tree itself, no access trace needed), so after the
// per-disk sort a sibling group activated together by a traversal lands at
// adjacent offsets and merges into one pread. Pages not reachable from the
// root (none, in a valid tree) keep rank UINT32_MAX and sort last.
std::vector<uint32_t> HotNeighborRanks(const rstar::RStarTree& tree,
                                       PageId page_slots) {
  std::vector<uint32_t> rank(page_slots,
                             std::numeric_limits<uint32_t>::max());
  if (tree.root() == rstar::kInvalidPage || page_slots == 0) return rank;
  uint32_t next = 0;
  std::deque<PageId> queue = {tree.root()};
  std::vector<std::pair<uint32_t, PageId>> kids;
  while (!queue.empty()) {
    const PageId id = queue.front();
    queue.pop_front();
    if (id >= page_slots ||
        rank[id] != std::numeric_limits<uint32_t>::max()) {
      continue;
    }
    rank[id] = next++;
    const Node& n = tree.node(id);
    if (n.IsLeaf()) continue;
    kids.clear();
    for (const rstar::Entry& e : n.entries) {
      kids.emplace_back(e.count, e.child);
    }
    std::stable_sort(kids.begin(), kids.end(),
                     [](const std::pair<uint32_t, PageId>& a,
                        const std::pair<uint32_t, PageId>& b) {
                       return a.first > b.first;
                     });
    for (const auto& [weight, child] : kids) queue.push_back(child);
  }
  return rank;
}

}  // namespace

common::Status SaveIndex(const ParallelRStarTree& index, PageStore* store) {
  return SaveIndex(index, store, SaveIndexOptions{});
}

common::Status SaveIndex(const ParallelRStarTree& index, PageStore* store,
                         const SaveIndexOptions& options) {
  SQP_CHECK(store != nullptr);
  const rstar::RStarTree& tree = index.tree();
  const parallel::DiskAssigner& placement = index.placement();
  const TreeConfig& cfg = tree.config();
  const size_t page_size = static_cast<size_t>(cfg.page_size_bytes);
  const int num_disks = index.num_disks();
  if (store->num_disks() != num_disks) {
    return common::Status::InvalidArgument(
        "store has " + std::to_string(store->num_disks()) +
        " disks, index needs " + std::to_string(num_disks));
  }

  // Plan: group node records per disk — primaries where the assigner
  // placed them, replicas on their mirror disk.
  const std::vector<PageId> live = tree.LiveNodeIds();
  PageId page_slots = 0;
  for (PageId id : live) page_slots = std::max(page_slots, id + 1);
  std::vector<std::vector<RecordPlan>> plans(
      static_cast<size_t>(num_disks));
  for (PageId id : live) {
    const Node& n = tree.node(id);
    RecordPlan plan;
    plan.page = id;
    plan.span = NodeSpan(n, cfg.dim, page_size);
    plan.mirror = placement.MirrorOf(id);
    plan.cylinder = placement.CylinderOf(id);
    plan.level = static_cast<uint8_t>(n.level);
    plans[static_cast<size_t>(placement.DiskOf(id))].push_back(plan);
    if (plan.mirror >= 0) {
      RecordPlan replica = plan;
      replica.replica = true;
      plans[static_cast<size_t>(plan.mirror)].push_back(replica);
    }
  }

  if (options.hot_neighbor_placement) {
    const std::vector<uint32_t> rank = HotNeighborRanks(tree, page_slots);
    for (std::vector<RecordPlan>& records : plans) {
      std::stable_sort(records.begin(), records.end(),
                       [&rank](const RecordPlan& a, const RecordPlan& b) {
                         if (a.replica != b.replica) return b.replica;
                         return rank[a.page] < rank[b.page];
                       });
    }
  }

  Superblock sb;
  sb.tree = cfg;
  sb.decluster = placement.config();
  sb.page_size = static_cast<uint32_t>(page_size);
  sb.page_slots = page_slots;
  sb.root = tree.root();
  sb.object_count = tree.size();
  sb.live_pages = live.size();

  const size_t dir_per_page = DirRecordsPerPage(page_size);
  for (int d = 0; d < num_disks; ++d) {
    std::vector<RecordPlan>& records = plans[static_cast<size_t>(d)];
    const uint32_t dir_pages = static_cast<uint32_t>(
        (records.size() + dir_per_page - 1) / dir_per_page);
    uint32_t next_page = 1 + dir_pages;
    for (RecordPlan& r : records) {
      r.local_index = next_page;
      next_page += r.span;
    }

    std::vector<uint8_t> file;
    file.reserve(static_cast<size_t>(next_page) * page_size);
    // Superblock.
    file.resize(page_size, 0);
    sb.disk_index = static_cast<uint32_t>(d);
    sb.dir_page_count = dir_pages;
    EncodeSuperblock(sb, file.data());
    // Directory.
    for (uint32_t p = 0; p < dir_pages; ++p) {
      const size_t base = file.size();
      file.resize(base + page_size, 0);
      uint8_t* page = file.data() + base;
      const size_t first = static_cast<size_t>(p) * dir_per_page;
      const size_t count = std::min(dir_per_page, records.size() - first);
      PageHeader h;
      h.type = PageType::kDirectory;
      h.entry_count = static_cast<uint32_t>(count);
      h.total_entries = static_cast<uint32_t>(records.size());
      h.span = static_cast<uint16_t>(dir_pages);
      h.seq = static_cast<uint16_t>(p);
      WritePageHeader(h, page);
      uint8_t* rec = page + kPageHeaderBytes;
      for (size_t i = 0; i < count; ++i, rec += kDirRecordBytes) {
        const RecordPlan& r = records[first + i];
        PutU32(rec + kDirPageId, r.page);
        PutU32(rec + kDirLocalIndex, r.local_index);
        PutU32(rec + kDirCylinder, static_cast<uint32_t>(r.cylinder));
        PutI32(rec + kDirMirror, r.mirror);
        PutU16(rec + kDirSpan, static_cast<uint16_t>(r.span));
        rec[kDirFlags] = r.replica ? kDirFlagReplica : 0;
        rec[kDirLevel] = r.level;
      }
      SealPage(page, page_size);
    }
    // Node records.
    for (const RecordPlan& r : records) {
      SQP_DCHECK(file.size() ==
                 static_cast<size_t>(r.local_index) * page_size);
      EncodeNode(tree.node(r.page), cfg.dim, page_size, &file);
    }

    SQP_RETURN_IF_ERROR(store->Truncate(d));
    SQP_RETURN_IF_ERROR(store->WriteAt(d, 0, file.data(), file.size()));
  }
  return store->Sync();
}

common::Result<std::unique_ptr<ParallelRStarTree>> OpenIndex(
    const PageStore& store) {
  // Bootstrap: page size and disk count live at fixed offsets in disk 0's
  // superblock, readable before the page size is known.
  size_t page_size = 0;
  int num_disks = 0;
  SQP_RETURN_IF_ERROR(ReadBootstrap(store, &page_size, &num_disks));
  auto max_slots = MaxPlausiblePageSlots(store, page_size);
  if (!max_slots.ok()) return max_slots.status();

  Superblock ref;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<PagePlacement> placements;
  std::vector<uint8_t> page(page_size);
  for (int d = 0; d < num_disks; ++d) {
    Superblock sb;
    std::vector<DirRecord> records;
    SQP_RETURN_IF_ERROR(ReadDiskDirectory(store, d, page_size, page.data(),
                                          &sb, &records));
    SQP_RETURN_IF_ERROR(CheckPageSlotsPlausible(
        sb, *max_slots, DiskTag(d) + " superblock"));
    if (d == 0) {
      ref = sb;
      nodes.resize(ref.page_slots);
      placements.reserve(ref.live_pages);
    } else if (!SuperblocksAgree(ref, sb)) {
      return CorruptionError(DiskTag(d) + " superblock" +
                             ": disagrees with disk 0 (mixed index files?)");
    }

    // Node records. Replicas are recovery copies; primaries are
    // authoritative, so only those are decoded here.
    std::vector<uint8_t> buf;
    for (const DirRecord& r : records) {
      if ((r.flags & kDirFlagReplica) != 0) continue;
      const std::string node_tag = DiskTag(d) + " node record for page " +
                                   std::to_string(r.page);
      if (r.span < 1 || r.local_index < 1 + sb.dir_page_count) {
        return CorruptionError(node_tag + ": bad directory record");
      }
      if (r.page >= ref.page_slots) {
        return CorruptionError(node_tag + ": page id out of range");
      }
      if (nodes[r.page] != nullptr) {
        return CorruptionError(node_tag + ": page stored twice");
      }
      buf.resize(static_cast<size_t>(r.span) * page_size);
      SQP_RETURN_IF_ERROR(
          ReadExact(store, d, static_cast<uint64_t>(r.local_index) * page_size,
                    buf.data(), buf.size(), node_tag));
      auto decoded = DecodeNode(buf.data(), r.span, ref.tree.dim, page_size,
                                r.page, node_tag);
      if (!decoded.ok()) return decoded.status();
      if (decoded->level != r.level) {
        return CorruptionError(node_tag +
                               ": level disagrees with directory");
      }
      nodes[r.page] = std::make_unique<Node>(std::move(*decoded));
      PagePlacement pl;
      pl.page = r.page;
      pl.disk = d;
      pl.mirror = r.mirror;
      pl.cylinder = static_cast<int>(r.cylinder);
      placements.push_back(pl);
    }
  }

  if (placements.size() != ref.live_pages) {
    return CorruptionError(
        "index stores " + std::to_string(placements.size()) +
        " pages but superblock promises " + std::to_string(ref.live_pages));
  }
  if (ref.root >= nodes.size() || nodes[ref.root] == nullptr) {
    return CorruptionError("root page " + std::to_string(ref.root) +
                           " missing from index");
  }

  auto index =
      std::make_unique<ParallelRStarTree>(ref.tree, ref.decluster);
  common::Status restored = index->Restore(ref.root, ref.object_count,
                                           std::move(nodes), placements);
  if (!restored.ok()) {
    return CorruptionError("index fails structural validation: " +
                           restored.ToString());
  }
  return index;
}

common::Result<IndexLayout> ReadIndexLayout(const PageStore& store) {
  size_t page_size = 0;
  int num_disks = 0;
  SQP_RETURN_IF_ERROR(ReadBootstrap(store, &page_size, &num_disks));
  auto max_slots = MaxPlausiblePageSlots(store, page_size);
  if (!max_slots.ok()) return max_slots.status();

  IndexLayout layout;
  Superblock ref;
  std::vector<uint8_t> page(page_size);
  uint64_t live = 0;
  for (int d = 0; d < num_disks; ++d) {
    Superblock sb;
    std::vector<DirRecord> records;
    SQP_RETURN_IF_ERROR(ReadDiskDirectory(store, d, page_size, page.data(),
                                          &sb, &records));
    SQP_RETURN_IF_ERROR(CheckPageSlotsPlausible(
        sb, *max_slots, DiskTag(d) + " superblock"));
    if (d == 0) {
      ref = sb;
      layout.pages.resize(ref.page_slots);
    } else if (!SuperblocksAgree(ref, sb)) {
      return CorruptionError(DiskTag(d) + " superblock" +
                             ": disagrees with disk 0 (mixed index files?)");
    }
    for (const DirRecord& r : records) {
      if ((r.flags & kDirFlagReplica) != 0) continue;
      const std::string tag = DiskTag(d) + " directory record for page " +
                              std::to_string(r.page);
      if (r.span < 1 || r.local_index < 1 + sb.dir_page_count) {
        return CorruptionError(tag + ": bad directory record");
      }
      if (r.page >= ref.page_slots) {
        return CorruptionError(tag + ": page id out of range");
      }
      PageLocation& loc = layout.pages[r.page];
      if (loc.span != 0) {
        return CorruptionError(tag + ": page stored twice");
      }
      loc.disk = d;
      loc.offset = static_cast<uint64_t>(r.local_index) * page_size;
      loc.span = r.span;
      loc.level = r.level;
      loc.mirror = r.mirror;
      loc.cylinder = r.cylinder;
      ++live;
    }
  }
  if (live != ref.live_pages) {
    return CorruptionError(
        "index stores " + std::to_string(live) +
        " pages but superblock promises " + std::to_string(ref.live_pages));
  }
  if (ref.root >= layout.pages.size() ||
      layout.pages[ref.root].span == 0) {
    return CorruptionError("root page " + std::to_string(ref.root) +
                           " missing from index");
  }
  layout.tree_config = ref.tree;
  layout.decluster = ref.decluster;
  layout.root = ref.root;
  layout.object_count = ref.object_count;
  layout.live_pages = ref.live_pages;
  layout.page_size = static_cast<uint32_t>(page_size);
  return layout;
}

common::Status SaveIndexToDir(const ParallelRStarTree& index,
                              const std::string& dir) {
  auto store = FilePageStore::Create(dir, index.num_disks());
  if (!store.ok()) return store.status();
  return SaveIndex(index, store->get());
}

common::Result<std::unique_ptr<ParallelRStarTree>> OpenIndexFromDir(
    const std::string& dir) {
  auto store = FilePageStore::Open(dir);
  if (!store.ok()) return store.status();
  return OpenIndex(**store);
}

}  // namespace sqp::storage
