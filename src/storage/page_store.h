// Byte stores backing the persistent index, one per simulated disk.
//
// A PageStore models the raw media of a D-disk array: D independent,
// flat byte spaces addressed by (disk, offset). All index I/O goes through
// this interface in whole page-size units, so the on-disk layout of each
// backing file mirrors the declustering assignment exactly: a page that
// the DiskAssigner placed on disk d is written only to store disk d.
//
// Two implementations:
//   * MemPageStore  — in-memory byte vectors; unit tests and corruption
//     injection (disk contents are directly addressable).
//   * FilePageStore — one POSIX file per disk (pread/pwrite), the real
//     durable backend.

#ifndef SQP_STORAGE_PAGE_STORE_H_
#define SQP_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqp::storage {

// One read of a batched ReadPages call: `len` bytes at (disk, offset) into
// `buf`. Requests of a batch may target any mix of disks and offsets.
struct ReadRequest {
  int disk = 0;
  uint64_t offset = 0;
  void* buf = nullptr;
  size_t len = 0;
};

// A maximal run of batch requests that one media access can serve: all on
// the same disk, contiguous in file offsets. `indices` orders the requests
// by offset within the run.
struct ReadRun {
  int disk = 0;
  uint64_t offset = 0;
  size_t len = 0;
  std::vector<size_t> indices;
};

// Groups `requests` per disk and merges offset-adjacent ones — the merge
// plan FilePageStore::ReadPages executes, ThrottledPageStore charges
// service time by, and completion-driven I/O backends turn into vectored
// submissions. Requests that overlap or arrive unsorted still end up in
// correct runs (the plan sorts), but only exact adjacency
// (offset + len == next offset) merges. One run == one media access, so
// runs.size() is the batch's physical read count.
std::vector<ReadRun> PlanReadRuns(std::span<const ReadRequest> requests);

class PageStore {
 public:
  virtual ~PageStore() = default;

  // Number of disks (independent byte spaces) in this store.
  virtual int num_disks() const = 0;

  // Current size in bytes of `disk`.
  virtual common::Result<uint64_t> SizeOf(int disk) const = 0;

  // Reads exactly `len` bytes at `offset`. OutOfRange if the read would
  // extend past the end of the disk (e.g. a truncated file).
  virtual common::Status ReadAt(int disk, uint64_t offset, void* buf,
                                size_t len) const = 0;

  // Completes every request of the batch, or returns the first error (in
  // which case the contents of all buffers are unspecified). The base
  // implementation issues one ReadAt per request; backends override it to
  // batch adjacent media accesses (see FilePageStore).
  virtual common::Status ReadPages(std::span<const ReadRequest> requests) const;

  // Writes exactly `len` bytes at `offset`, extending the disk as needed.
  virtual common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                                 size_t len) = 0;

  // Discards all content of `disk` (fresh save).
  virtual common::Status Truncate(int disk) = 0;

  // Flushes buffered writes to durable media where applicable.
  virtual common::Status Sync() = 0;

  // Capability probe for kernel-native I/O backends: the open file
  // descriptor backing `disk`, or -1 when this store is not a plain
  // per-disk file (in-memory stores, and every decorator — throttling and
  // fault injection must keep sitting below the I/O backend, so a
  // decorated store deliberately reports no fds and the backend routes
  // its reads through ReadPages instead).
  virtual int RawFd(int disk) const {
    (void)disk;
    return -1;
  }
};

// In-memory store; contents survive only as long as the object.
class MemPageStore : public PageStore {
 public:
  explicit MemPageStore(int num_disks);

  int num_disks() const override;
  common::Result<uint64_t> SizeOf(int disk) const override;
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;

  // Direct access to a disk's bytes, for tests that flip bits or truncate.
  std::vector<uint8_t>& disk_bytes(int disk);

 private:
  std::vector<std::vector<uint8_t>> disks_;
};

// One backing file per disk under a single directory. File names are
// DiskFileName(d); the directory is created on Create().
class FilePageStore : public PageStore {
 public:
  // Creates (or truncates) `num_disks` backing files under `dir`.
  static common::Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& dir, int num_disks);

  // Opens an existing store, inferring the disk count from the files
  // present. NotFound if `dir` holds no disk files.
  static common::Result<std::unique_ptr<FilePageStore>> Open(
      const std::string& dir);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  int num_disks() const override;
  common::Result<uint64_t> SizeOf(int disk) const override;
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  // Groups the batch per disk and merges requests that are adjacent in the
  // file into single preads (one seek amortized over the run), so a batch
  // of consecutive pages costs one syscall instead of one per page.
  common::Status ReadPages(
      std::span<const ReadRequest> requests) const override;
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;
  // The real per-disk file descriptor — this is the one store a
  // kernel-native backend may read directly.
  int RawFd(int disk) const override;

  const std::string& dir() const { return dir_; }

  // "disk-0007.sqp" for disk 7.
  static std::string DiskFileName(int disk);

 private:
  FilePageStore(std::string dir, std::vector<int> fds);

  std::string dir_;
  std::vector<int> fds_;  // one open file descriptor per disk
};

// Read-write view of a contiguous run of another store's disks, exposed
// as a store of its own with disks renumbered from zero. Lets several
// logical stores share one physical array — and, more importantly, share
// one fault-injection decorator: the crash-recovery harness wraps a
// (D+1)-disk MemPageStore in a single FaultInjectingPageStore so the index
// image (disks 0..D-1) and its write-ahead log (disk D) count against the
// same global write-operation clock, then hands each consumer its slice.
class PageStoreSlice : public PageStore {
 public:
  // Exposes `base` disks [first_disk, first_disk + num_disks) as disks
  // [0, num_disks). `base` must outlive the slice.
  PageStoreSlice(PageStore* base, int first_disk, int num_disks);

  int num_disks() const override { return num_disks_; }
  common::Result<uint64_t> SizeOf(int disk) const override;
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  common::Status ReadPages(
      std::span<const ReadRequest> requests) const override;
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;

 private:
  common::Status CheckDisk(int disk) const;

  PageStore* base_;  // not owned
  int first_disk_;
  int num_disks_;
};

// Retargetable facade over another store. MutableIndex hands one of
// these out as its data_store(): the engine's StoredIndexReader captures
// the pointer once at CreateMutable, and a crash-atomic checkpoint flips
// the target from the old generation's store to the new one's. The swap
// happens only under the writer lock with the epoch gate drained — no
// read is in flight — so plain acquire/release on the target pointer is
// enough; readers that start after the flip (and after the commit
// callback invalidated their cache) see the new generation's bytes.
class SwitchablePageStore : public PageStore {
 public:
  SwitchablePageStore() = default;
  explicit SwitchablePageStore(PageStore* target) : target_(target) {}

  void SetTarget(PageStore* target) {
    target_.store(target, std::memory_order_release);
  }
  PageStore* target() const { return target_.load(std::memory_order_acquire); }

  int num_disks() const override { return target()->num_disks(); }
  common::Result<uint64_t> SizeOf(int disk) const override {
    return target()->SizeOf(disk);
  }
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override {
    return target()->ReadAt(disk, offset, buf, len);
  }
  common::Status ReadPages(
      std::span<const ReadRequest> requests) const override {
    return target()->ReadPages(requests);
  }
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override {
    return target()->WriteAt(disk, offset, buf, len);
  }
  common::Status Truncate(int disk) override { return target()->Truncate(disk); }
  common::Status Sync() override { return target()->Sync(); }

 private:
  std::atomic<PageStore*> target_{nullptr};  // not owned
};

// Decorator that charges a fixed service time per media access of the
// wrapped store. The backing files of a FilePageStore live in the OS page
// cache (microsecond "seeks"), so engine benchmarks that want to observe
// real I/O overlap across disks wrap the store in one of these: each
// ReadAt blocks the calling thread for `read_latency_s`, and a merged
// ReadPages run is charged once per pread — exactly the economics the
// per-disk I/O workers of src/exec/ are built to exploit. Writes are
// passed through unchanged.
class ThrottledPageStore : public PageStore {
 public:
  ThrottledPageStore(const PageStore* base, double read_latency_s)
      : base_(base), read_latency_s_(read_latency_s) {}

  int num_disks() const override { return base_->num_disks(); }
  common::Result<uint64_t> SizeOf(int disk) const override {
    return base_->SizeOf(disk);
  }
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  common::Status ReadPages(
      std::span<const ReadRequest> requests) const override;
  common::Status WriteAt(int /*disk*/, uint64_t /*offset*/,
                         const void* /*buf*/, size_t /*len*/) override {
    return common::Status::FailedPrecondition(
        "ThrottledPageStore is read-only");
  }
  common::Status Truncate(int /*disk*/) override {
    return common::Status::FailedPrecondition(
        "ThrottledPageStore is read-only");
  }
  common::Status Sync() override { return common::Status::OK(); }

 private:
  const PageStore* base_;  // not owned
  double read_latency_s_;
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_PAGE_STORE_H_
