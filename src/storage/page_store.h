// Byte stores backing the persistent index, one per simulated disk.
//
// A PageStore models the raw media of a D-disk array: D independent,
// flat byte spaces addressed by (disk, offset). All index I/O goes through
// this interface in whole page-size units, so the on-disk layout of each
// backing file mirrors the declustering assignment exactly: a page that
// the DiskAssigner placed on disk d is written only to store disk d.
//
// Two implementations:
//   * MemPageStore  — in-memory byte vectors; unit tests and corruption
//     injection (disk contents are directly addressable).
//   * FilePageStore — one POSIX file per disk (pread/pwrite), the real
//     durable backend.

#ifndef SQP_STORAGE_PAGE_STORE_H_
#define SQP_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqp::storage {

class PageStore {
 public:
  virtual ~PageStore() = default;

  // Number of disks (independent byte spaces) in this store.
  virtual int num_disks() const = 0;

  // Current size in bytes of `disk`.
  virtual common::Result<uint64_t> SizeOf(int disk) const = 0;

  // Reads exactly `len` bytes at `offset`. OutOfRange if the read would
  // extend past the end of the disk (e.g. a truncated file).
  virtual common::Status ReadAt(int disk, uint64_t offset, void* buf,
                                size_t len) const = 0;

  // Writes exactly `len` bytes at `offset`, extending the disk as needed.
  virtual common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                                 size_t len) = 0;

  // Discards all content of `disk` (fresh save).
  virtual common::Status Truncate(int disk) = 0;

  // Flushes buffered writes to durable media where applicable.
  virtual common::Status Sync() = 0;
};

// In-memory store; contents survive only as long as the object.
class MemPageStore : public PageStore {
 public:
  explicit MemPageStore(int num_disks);

  int num_disks() const override;
  common::Result<uint64_t> SizeOf(int disk) const override;
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;

  // Direct access to a disk's bytes, for tests that flip bits or truncate.
  std::vector<uint8_t>& disk_bytes(int disk);

 private:
  std::vector<std::vector<uint8_t>> disks_;
};

// One backing file per disk under a single directory. File names are
// DiskFileName(d); the directory is created on Create().
class FilePageStore : public PageStore {
 public:
  // Creates (or truncates) `num_disks` backing files under `dir`.
  static common::Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& dir, int num_disks);

  // Opens an existing store, inferring the disk count from the files
  // present. NotFound if `dir` holds no disk files.
  static common::Result<std::unique_ptr<FilePageStore>> Open(
      const std::string& dir);

  ~FilePageStore() override;

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  int num_disks() const override;
  common::Result<uint64_t> SizeOf(int disk) const override;
  common::Status ReadAt(int disk, uint64_t offset, void* buf,
                        size_t len) const override;
  common::Status WriteAt(int disk, uint64_t offset, const void* buf,
                         size_t len) override;
  common::Status Truncate(int disk) override;
  common::Status Sync() override;

  const std::string& dir() const { return dir_; }

  // "disk-0007.sqp" for disk 7.
  static std::string DiskFileName(int disk);

 private:
  FilePageStore(std::string dir, std::vector<int> fds);

  std::string dir_;
  std::vector<int> fds_;  // one open file descriptor per disk
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_PAGE_STORE_H_
