// Epoch-based reclamation barrier for index readers.
//
// Copy-on-write keeps every page version a query snapshot can reach
// byte-immutable, so queries never lock pages — but a Checkpoint folds the
// log into a fresh base image by truncating and rewriting the data disks,
// which WOULD yank bytes out from under an in-flight traversal. The gate
// makes that safe: every traversal runs inside an epoch (Enter/Exit), and
// the checkpointer — after taking the writer lock so no new traversal can
// start — advances the epoch and drains everyone who entered before the
// advance. Only then may old bytes be reclaimed.

#ifndef SQP_STORAGE_EPOCH_GATE_H_
#define SQP_STORAGE_EPOCH_GATE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>

namespace sqp::storage {

class EpochGate {
 public:
  // Registers a reader in the current epoch; never blocks. The returned
  // token must be passed to Exit() when the traversal is done with every
  // page byte it may dereference.
  uint64_t Enter() {
    std::lock_guard<std::mutex> lock(mu_);
    ++active_[current_];
    return current_;
  }

  void Exit(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(epoch);
    if (it != active_.end() && --it->second == 0) active_.erase(it);
    cv_.notify_all();
  }

  // Starts a new epoch. Readers that entered earlier keep their old
  // tokens; WaitForDrain() blocks on exactly those.
  void Advance() {
    std::lock_guard<std::mutex> lock(mu_);
    ++current_;
  }

  // Blocks until every reader of every epoch before the current one has
  // exited. Call with new Enter()s excluded (the caller holds the writer
  // lock), or this may wait forever.
  void WaitForDrain() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] {
      auto it = active_.begin();
      return it == active_.end() || it->first >= current_;
    });
  }

  // Readers currently inside any epoch (tests / metrics).
  int ActiveReaders() const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& [epoch, count] : active_) n += count;
    return n;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t current_ = 0;
  std::map<uint64_t, int> active_;  // epoch -> readers still inside
};

}  // namespace sqp::storage

#endif  // SQP_STORAGE_EPOCH_GATE_H_
