#include "storage/wal.h"

#include <cstring>

#include "common/check.h"
#include "storage/page_format.h"

namespace sqp::storage {
namespace {

inline constexpr size_t kWalDeltaBytes = 29;
inline constexpr size_t kWalCommitFixedBytes = 16;

// An upper bound no legitimate payload reaches (a commit touches a handful
// of tree nodes); anything larger is remnant garbage, not a record.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 28;

}  // namespace

std::vector<uint8_t> EncodeWalCommit(const WalCommit& commit) {
  const size_t payload_len =
      kWalCommitFixedBytes + commit.deltas.size() * kWalDeltaBytes;
  std::vector<uint8_t> rec(kWalHeaderBytes + payload_len, 0);
  PutU32(rec.data() + 0, kWalMagic);
  PutU16(rec.data() + 4, kFormatVersion);
  PutU16(rec.data() + 6, kWalRecordCommit);
  PutU32(rec.data() + 8, static_cast<uint32_t>(payload_len));
  // crc at 12 stays zero until the end
  PutU64(rec.data() + 16, commit.lsn);

  uint8_t* p = rec.data() + kWalHeaderBytes;
  PutU32(p + 0, commit.root);
  PutU64(p + 4, commit.object_count);
  PutU32(p + 12, static_cast<uint32_t>(commit.deltas.size()));
  p += kWalCommitFixedBytes;
  for (const WalPageDelta& d : commit.deltas) {
    PutU32(p + 0, d.page);
    PutI32(p + 4, d.loc.disk);
    PutU64(p + 8, d.loc.offset);
    PutU32(p + 16, d.loc.span);
    p[20] = d.loc.level;
    PutI32(p + 21, d.loc.mirror);
    PutU32(p + 25, d.loc.cylinder);
    p += kWalDeltaBytes;
  }
  PutU32(rec.data() + 12, Crc32c(rec.data(), rec.size()));
  return rec;
}

common::Result<WalScanResult> ScanWal(const PageStore& store, int disk) {
  auto size = store.SizeOf(disk);
  if (!size.ok()) return size.status();

  WalScanResult out;
  uint64_t pos = 0;
  std::vector<uint8_t> buf;
  while (pos + kWalHeaderBytes <= *size) {
    uint8_t header[kWalHeaderBytes];
    SQP_RETURN_IF_ERROR(
        store.ReadAt(disk, pos, header, kWalHeaderBytes));
    if (GetU32(header + 0) != kWalMagic) break;
    if (GetU16(header + 4) != kFormatVersion) break;
    if (GetU16(header + 6) != kWalRecordCommit) break;
    const uint32_t payload_len = GetU32(header + 8);
    if (payload_len > kMaxPayloadBytes) break;
    if (pos + kWalHeaderBytes + payload_len > *size) break;
    if (payload_len < kWalCommitFixedBytes ||
        (payload_len - kWalCommitFixedBytes) % kWalDeltaBytes != 0) {
      break;
    }
    if (GetU64(header + 16) != out.next_lsn) break;

    buf.resize(kWalHeaderBytes + payload_len);
    std::memcpy(buf.data(), header, kWalHeaderBytes);
    SQP_RETURN_IF_ERROR(store.ReadAt(disk, pos + kWalHeaderBytes,
                                     buf.data() + kWalHeaderBytes,
                                     payload_len));
    const uint32_t stored_crc = GetU32(buf.data() + 12);
    PutU32(buf.data() + 12, 0);
    if (Crc32c(buf.data(), buf.size()) != stored_crc) break;

    const uint8_t* p = buf.data() + kWalHeaderBytes;
    WalCommit commit;
    commit.lsn = out.next_lsn;
    commit.root = GetU32(p + 0);
    commit.object_count = GetU64(p + 4);
    const uint32_t delta_count = GetU32(p + 12);
    if (delta_count !=
        (payload_len - kWalCommitFixedBytes) / kWalDeltaBytes) {
      break;
    }
    p += kWalCommitFixedBytes;
    commit.deltas.resize(delta_count);
    for (uint32_t i = 0; i < delta_count; ++i, p += kWalDeltaBytes) {
      WalPageDelta& d = commit.deltas[i];
      d.page = GetU32(p + 0);
      d.loc.disk = GetI32(p + 4);
      d.loc.offset = GetU64(p + 8);
      d.loc.span = GetU32(p + 16);
      d.loc.level = p[20];
      d.loc.mirror = GetI32(p + 21);
      d.loc.cylinder = GetU32(p + 25);
    }
    out.records.push_back(std::move(commit));
    pos += kWalHeaderBytes + payload_len;
    ++out.next_lsn;
  }
  out.valid_end_offset = pos;
  out.torn_tail = pos < *size;
  return out;
}

WalWriter::WalWriter(PageStore* store, int disk, uint64_t next_lsn,
                     uint64_t tail_offset)
    : store_(store),
      disk_(disk),
      next_lsn_(next_lsn),
      tail_offset_(tail_offset) {
  SQP_CHECK(store != nullptr);
  SQP_CHECK(disk >= 0 && disk < store->num_disks());
  SQP_CHECK(next_lsn >= 1);
}

common::Status WalWriter::AppendCommit(WalCommit* commit) {
  commit->lsn = next_lsn_;
  const std::vector<uint8_t> rec = EncodeWalCommit(*commit);
  common::Status s =
      store_->WriteAt(disk_, tail_offset_, rec.data(), rec.size());
  if (s.ok()) s = store_->Sync();
  if (!s.ok()) {
    commit->lsn = 0;  // not committed; bytes on disk are a torn tail
    return s;
  }
  tail_offset_ += rec.size();
  ++next_lsn_;
  return common::Status::OK();
}

common::Status WalWriter::Reset() {
  SQP_RETURN_IF_ERROR(store_->Truncate(disk_));
  SQP_RETURN_IF_ERROR(store_->Sync());
  next_lsn_ = 1;
  tail_offset_ = 0;
  return common::Status::OK();
}

}  // namespace sqp::storage
