// On-disk page format shared by every persistent structure (docs/STORAGE.md).
//
// All multi-byte fields are little-endian regardless of host byte order.
// Every page starts with a fixed 40-byte header carrying a magic number,
// the format version, the page type and a CRC32C checksum computed over
// the whole page (with the checksum field itself zeroed). Readers verify
// magic, version and checksum before interpreting a single payload byte,
// so corruption surfaces as a common::Status error instead of undefined
// behavior.

#ifndef SQP_STORAGE_PAGE_FORMAT_H_
#define SQP_STORAGE_PAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace sqp::storage {

// "SQPG" in ASCII; first four bytes of every page.
inline constexpr uint32_t kPageMagic = 0x47505153;

// Bumped whenever the page layout changes incompatibly. Readers reject any
// other version with a clear error (no silent reinterpretation).
inline constexpr uint16_t kFormatVersion = 1;

enum class PageType : uint8_t {
  kSuperblock = 1,        // per-disk-file metadata + index configuration
  kDirectory = 2,         // page-id -> file-offset records for one disk
  kNode = 3,              // first (or only) page of a serialized tree node
  kNodeContinuation = 4,  // overflow pages of a multi-page node record
};

// Header layout (byte offsets within the page):
//   0  u32 magic
//   4  u16 format version
//   6  u8  page type
//   7  u8  node level (kNode/kNodeContinuation; 0 otherwise)
//   8  u32 crc32c over the page with these four bytes zeroed
//   12 u32 page id (tree PageId; 0 for superblock/directory pages)
//   16 u32 entry count in this page (node entries / directory records)
//   20 u32 total entries in the whole record (== entry count when span 1)
//   24 u16 span: number of pages in this record
//   26 u16 seq: index of this page within its record [0, span)
//   28 12B reserved (zero)
inline constexpr size_t kPageHeaderBytes = 40;
inline constexpr size_t kCrcFieldOffset = 8;

struct PageHeader {
  PageType type = PageType::kNode;
  uint8_t level = 0;
  uint32_t page_id = 0;
  uint32_t entry_count = 0;
  uint32_t total_entries = 0;
  uint16_t span = 1;
  uint16_t seq = 0;
};

// --- Little-endian primitives -------------------------------------------

inline void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
inline void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}
inline void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}
inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}
inline void PutF32(uint8_t* p, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(p, bits);
}
inline float GetF32(const uint8_t* p) {
  const uint32_t bits = GetU32(p);
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
inline void PutF64(uint8_t* p, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(p, bits);
}
inline double GetF64(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}
inline void PutI32(uint8_t* p, int32_t v) {
  PutU32(p, static_cast<uint32_t>(v));
}
inline int32_t GetI32(const uint8_t* p) {
  return static_cast<int32_t>(GetU32(p));
}

// --- Checksumming -------------------------------------------------------

// CRC32C (Castagnoli polynomial, as used by iSCSI/ext4/LevelDB). Software
// table implementation; `Crc32cExtend` continues a running checksum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len);
uint32_t Crc32c(const void* data, size_t len);

// An error class for on-disk damage (bit rot, truncation, foreign files).
// Kept distinct from InvalidArgument so callers can tell "you handed me a
// bad argument" from "the bytes on disk are bad".
common::Status CorruptionError(std::string message);
bool IsCorruption(const common::Status& s);

// --- Page header read/write ---------------------------------------------

// Writes magic, version and `h` into `page` (checksum left zero). The
// payload must be filled in afterwards, then the page sealed.
void WritePageHeader(const PageHeader& h, uint8_t* page);

// Computes and stamps the checksum of a fully assembled page. Must be the
// last write to the buffer.
void SealPage(uint8_t* page, size_t page_size);

// Verifies magic, format version and checksum of `page`, in that order,
// and checks the page type. `what` names the page in error messages, e.g.
// "disk 3 page 17". Returns CorruptionError / InvalidArgument on failure.
common::Status CheckPage(const uint8_t* page, size_t page_size,
                         PageType expected_type, const std::string& what);

// Parses the header fields. Call only after CheckPage succeeded.
PageHeader ReadPageHeader(const uint8_t* page);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_PAGE_FORMAT_H_
