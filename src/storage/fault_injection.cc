#include "storage/fault_injection.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/check.h"

namespace sqp::storage {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kTornRead:
      return "torn_read";
    case FaultKind::kTransientError:
      return "transient_error";
    case FaultKind::kPermanentError:
      return "permanent_error";
    case FaultKind::kLatencySpike:
      return "latency_spike";
    case FaultKind::kPowerCut:
      return "power_cut";
  }
  return "unknown";
}

FaultInjectingPageStore::FaultInjectingPageStore(PageStore* base,
                                                 uint64_t seed)
    : base_(base), rng_(seed) {
  SQP_CHECK(base != nullptr);
}

int FaultInjectingPageStore::AddFault(const FaultSpec& spec) {
  SQP_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back(spec);
  hits_.push_back(0);
  return static_cast<int>(specs_.size()) - 1;
}

void FaultInjectingPageStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  hits_.clear();
  log_.clear();
  stats_ = FaultInjectionStats();
  power_cut_armed_ = false;
  power_cut_tripped_ = false;
  power_cut_tear_first_ = false;
  power_cut_allow_ops_ = 0;
  power_cut_base_ops_ = 0;
}

void FaultInjectingPageStore::ArmPowerCut(uint64_t allow_ops,
                                          bool tear_first) {
  std::lock_guard<std::mutex> lock(mu_);
  power_cut_armed_ = true;
  power_cut_tripped_ = false;
  power_cut_tear_first_ = tear_first;
  power_cut_allow_ops_ = allow_ops;
  power_cut_base_ops_ = stats_.write_ops;
}

void FaultInjectingPageStore::DisarmPowerCut() {
  std::lock_guard<std::mutex> lock(mu_);
  power_cut_armed_ = false;
  power_cut_tripped_ = false;
}

uint64_t FaultInjectingPageStore::write_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.write_ops;
}

FaultInjectionStats FaultInjectingPageStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<FaultEvent> FaultInjectingPageStore::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

FaultInjectingPageStore::Decision FaultInjectingPageStore::Decide(
    int disk, uint64_t offset, size_t len) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = stats_.reads++;
  Decision d;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const FaultSpec& spec = specs_[s];
    if (spec.max_hits >= 0 && hits_[s] >= spec.max_hits) continue;
    if (spec.disk >= 0 && spec.disk != disk) continue;
    if (offset >= spec.offset_hi || offset + len <= spec.offset_lo) continue;
    if (spec.probability < 1.0 && rng_.Uniform() >= spec.probability) {
      continue;
    }
    d.fire = true;
    d.kind = spec.kind;
    d.latency_s = spec.latency_s;
    if (spec.kind == FaultKind::kBitFlip && len > 0) {
      d.bit_index = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(len) * 8 - 1));
      d.burst_bits = static_cast<uint32_t>(rng_.UniformInt(1, 8));
    }
    if (spec.kind == FaultKind::kTornRead && len > 0) {
      d.cut_at = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(len) - 1));
    }
    ++hits_[s];
    ++stats_.faults;
    ++stats_.by_kind[static_cast<int>(spec.kind)];
    FaultEvent event;
    event.kind = spec.kind;
    event.spec_index = static_cast<int>(s);
    event.disk = disk;
    event.offset = offset;
    event.len = len;
    event.read_seq = seq;
    log_.push_back(event);
    break;  // first firing spec wins the attempt
  }
  return d;
}

common::Status FaultInjectingPageStore::ReadAt(int disk, uint64_t offset,
                                               void* buf, size_t len) const {
  const Decision d = Decide(disk, offset, len);
  const std::string where = "disk " + std::to_string(disk) + " offset " +
                            std::to_string(offset);
  if (d.fire) {
    switch (d.kind) {
      case FaultKind::kTransientError:
        return common::Status::Unavailable("injected transient I/O error (" +
                                           where + ")");
      case FaultKind::kPermanentError:
        return common::Status::Internal("injected permanent I/O error (" +
                                        where + ")");
      case FaultKind::kLatencySpike:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(d.latency_s));
        break;
      case FaultKind::kBitFlip:
      case FaultKind::kTornRead:
        break;  // applied to the buffer after the base read
      case FaultKind::kPowerCut:
        break;  // write-side only; never decided for a read
    }
  }
  SQP_RETURN_IF_ERROR(base_->ReadAt(disk, offset, buf, len));
  if (d.fire && len > 0) {
    uint8_t* bytes = static_cast<uint8_t*>(buf);
    if (d.kind == FaultKind::kBitFlip) {
      for (uint32_t b = 0; b < d.burst_bits; ++b) {
        const uint64_t bit = d.bit_index + b;
        if (bit >= static_cast<uint64_t>(len) * 8) break;
        bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    } else if (d.kind == FaultKind::kTornRead) {
      std::memset(bytes + d.cut_at, 0, len - d.cut_at);
    }
  }
  return common::Status::OK();
}

common::Status FaultInjectingPageStore::ReadPages(
    std::span<const ReadRequest> requests) const {
  common::Status first_error;
  for (const ReadRequest& r : requests) {
    const common::Status s = ReadAt(r.disk, r.offset, r.buf, r.len);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  // Unlike the merging backends, every request was attempted (so a batch
  // sees all of its faults, not just the first), but like them the batch
  // reports its first error.
  return first_error;
}

FaultInjectingPageStore::WriteDecision FaultInjectingPageStore::DecideWrite(
    int disk, uint64_t offset, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t op = stats_.write_ops++;
  WriteDecision d;
  if (!power_cut_armed_) return d;
  if (power_cut_tripped_) {
    d.fail = true;
  } else if (op - power_cut_base_ops_ >= power_cut_allow_ops_) {
    // This operation is the cut boundary. A WriteAt is dropped or torn;
    // Truncate and Sync (len == 0 sentinel via SIZE_MAX) just fail — the
    // callers pass len = SIZE_MAX for non-WriteAt ops.
    power_cut_tripped_ = true;
    if (len == SIZE_MAX) {
      d.fail = true;
    } else if (power_cut_tear_first_ && len > 0) {
      d.tear = true;
      d.tear_len = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(len) - 1));
    } else {
      d.drop = true;
    }
  } else {
    return d;  // before the cut: pass through, no event
  }
  ++stats_.faults;
  ++stats_.by_kind[static_cast<int>(FaultKind::kPowerCut)];
  FaultEvent event;
  event.kind = FaultKind::kPowerCut;
  event.spec_index = -1;  // power cuts are armed, not spec-scripted
  event.disk = disk;
  event.offset = offset;
  event.len = (len == SIZE_MAX) ? 0 : len;
  event.read_seq = op;  // write-op clock for write-side events
  log_.push_back(event);
  return d;
}

common::Status FaultInjectingPageStore::WriteAt(int disk, uint64_t offset,
                                                const void* buf, size_t len) {
  const WriteDecision d = DecideWrite(disk, offset, len);
  if (d.fail) {
    return common::Status::Unavailable(
        "injected power cut (disk " + std::to_string(disk) + " offset " +
        std::to_string(offset) + ")");
  }
  if (d.drop) return common::Status::OK();  // lost write: media untouched
  if (d.tear) {
    // Torn write: only a prefix reaches media, then the machine dies.
    if (d.tear_len == 0) return common::Status::OK();
    return base_->WriteAt(disk, offset, buf, d.tear_len);
  }
  return base_->WriteAt(disk, offset, buf, len);
}

common::Status FaultInjectingPageStore::Truncate(int disk) {
  const WriteDecision d = DecideWrite(disk, 0, SIZE_MAX);
  if (d.fail) {
    return common::Status::Unavailable("injected power cut (truncate disk " +
                                       std::to_string(disk) + ")");
  }
  return base_->Truncate(disk);
}

common::Status FaultInjectingPageStore::Sync() {
  const WriteDecision d = DecideWrite(-1, 0, SIZE_MAX);
  if (d.fail) {
    return common::Status::Unavailable("injected power cut (sync)");
  }
  return base_->Sync();
}

}  // namespace sqp::storage
