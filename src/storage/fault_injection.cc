#include "storage/fault_injection.h"

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "common/check.h"

namespace sqp::storage {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kTornRead:
      return "torn_read";
    case FaultKind::kTransientError:
      return "transient_error";
    case FaultKind::kPermanentError:
      return "permanent_error";
    case FaultKind::kLatencySpike:
      return "latency_spike";
  }
  return "unknown";
}

FaultInjectingPageStore::FaultInjectingPageStore(PageStore* base,
                                                 uint64_t seed)
    : base_(base), rng_(seed) {
  SQP_CHECK(base != nullptr);
}

int FaultInjectingPageStore::AddFault(const FaultSpec& spec) {
  SQP_CHECK(spec.probability >= 0.0 && spec.probability <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  specs_.push_back(spec);
  hits_.push_back(0);
  return static_cast<int>(specs_.size()) - 1;
}

void FaultInjectingPageStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  specs_.clear();
  hits_.clear();
  log_.clear();
  stats_ = FaultInjectionStats();
}

FaultInjectionStats FaultInjectingPageStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<FaultEvent> FaultInjectingPageStore::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

FaultInjectingPageStore::Decision FaultInjectingPageStore::Decide(
    int disk, uint64_t offset, size_t len) const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = stats_.reads++;
  Decision d;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const FaultSpec& spec = specs_[s];
    if (spec.max_hits >= 0 && hits_[s] >= spec.max_hits) continue;
    if (spec.disk >= 0 && spec.disk != disk) continue;
    if (offset >= spec.offset_hi || offset + len <= spec.offset_lo) continue;
    if (spec.probability < 1.0 && rng_.Uniform() >= spec.probability) {
      continue;
    }
    d.fire = true;
    d.kind = spec.kind;
    d.latency_s = spec.latency_s;
    if (spec.kind == FaultKind::kBitFlip && len > 0) {
      d.bit_index = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(len) * 8 - 1));
      d.burst_bits = static_cast<uint32_t>(rng_.UniformInt(1, 8));
    }
    if (spec.kind == FaultKind::kTornRead && len > 0) {
      d.cut_at = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(len) - 1));
    }
    ++hits_[s];
    ++stats_.faults;
    ++stats_.by_kind[static_cast<int>(spec.kind)];
    FaultEvent event;
    event.kind = spec.kind;
    event.spec_index = static_cast<int>(s);
    event.disk = disk;
    event.offset = offset;
    event.len = len;
    event.read_seq = seq;
    log_.push_back(event);
    break;  // first firing spec wins the attempt
  }
  return d;
}

common::Status FaultInjectingPageStore::ReadAt(int disk, uint64_t offset,
                                               void* buf, size_t len) const {
  const Decision d = Decide(disk, offset, len);
  const std::string where = "disk " + std::to_string(disk) + " offset " +
                            std::to_string(offset);
  if (d.fire) {
    switch (d.kind) {
      case FaultKind::kTransientError:
        return common::Status::Unavailable("injected transient I/O error (" +
                                           where + ")");
      case FaultKind::kPermanentError:
        return common::Status::Internal("injected permanent I/O error (" +
                                        where + ")");
      case FaultKind::kLatencySpike:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(d.latency_s));
        break;
      case FaultKind::kBitFlip:
      case FaultKind::kTornRead:
        break;  // applied to the buffer after the base read
    }
  }
  SQP_RETURN_IF_ERROR(base_->ReadAt(disk, offset, buf, len));
  if (d.fire && len > 0) {
    uint8_t* bytes = static_cast<uint8_t*>(buf);
    if (d.kind == FaultKind::kBitFlip) {
      for (uint32_t b = 0; b < d.burst_bits; ++b) {
        const uint64_t bit = d.bit_index + b;
        if (bit >= static_cast<uint64_t>(len) * 8) break;
        bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
    } else if (d.kind == FaultKind::kTornRead) {
      std::memset(bytes + d.cut_at, 0, len - d.cut_at);
    }
  }
  return common::Status::OK();
}

common::Status FaultInjectingPageStore::ReadPages(
    std::span<const ReadRequest> requests) const {
  common::Status first_error;
  for (const ReadRequest& r : requests) {
    const common::Status s = ReadAt(r.disk, r.offset, r.buf, r.len);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  // Unlike the merging backends, every request was attempted (so a batch
  // sees all of its faults, not just the first), but like them the batch
  // reports its first error.
  return first_error;
}

common::Status FaultInjectingPageStore::WriteAt(int disk, uint64_t offset,
                                                const void* buf, size_t len) {
  return base_->WriteAt(disk, offset, buf, len);
}

common::Status FaultInjectingPageStore::Truncate(int disk) {
  return base_->Truncate(disk);
}

common::Status FaultInjectingPageStore::Sync() {
  return base_->Sync();
}

}  // namespace sqp::storage
