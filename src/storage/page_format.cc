#include "storage/page_format.h"

#include <cstring>

#include "common/check.h"

namespace sqp::storage {
namespace {

// Reflected CRC32C table for the Castagnoli polynomial 0x1EDC6F41
// (reflected form 0x82F63B78), built once on first use.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const uint32_t* Table() {
  static const Crc32cTable table;
  return table.entries;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t* table = Table();
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32c(const void* data, size_t len) {
  return Crc32cExtend(0, data, len);
}

common::Status CorruptionError(std::string message) {
  return common::Status::Internal("corruption: " + std::move(message));
}

bool IsCorruption(const common::Status& s) {
  return s.code() == common::StatusCode::kInternal &&
         s.message().rfind("corruption: ", 0) == 0;
}

namespace {

// Checksum of `page` with the CRC field treated as zero.
uint32_t PageCrc(const uint8_t* page, size_t page_size) {
  static const uint8_t kZeros[4] = {0, 0, 0, 0};
  uint32_t crc = Crc32cExtend(0, page, kCrcFieldOffset);
  crc = Crc32cExtend(crc, kZeros, sizeof(kZeros));
  return Crc32cExtend(crc, page + kCrcFieldOffset + 4,
                      page_size - kCrcFieldOffset - 4);
}

}  // namespace

void WritePageHeader(const PageHeader& h, uint8_t* page) {
  PutU32(page + 0, kPageMagic);
  PutU16(page + 4, kFormatVersion);
  page[6] = static_cast<uint8_t>(h.type);
  page[7] = h.level;
  PutU32(page + 8, 0);  // checksum; stamped by SealPage
  PutU32(page + 12, h.page_id);
  PutU32(page + 16, h.entry_count);
  PutU32(page + 20, h.total_entries);
  PutU16(page + 24, h.span);
  PutU16(page + 26, h.seq);
  std::memset(page + 28, 0, kPageHeaderBytes - 28);
}

void SealPage(uint8_t* page, size_t page_size) {
  SQP_CHECK(page_size > kPageHeaderBytes);
  PutU32(page + kCrcFieldOffset, PageCrc(page, page_size));
}

common::Status CheckPage(const uint8_t* page, size_t page_size,
                         PageType expected_type, const std::string& what) {
  if (GetU32(page) != kPageMagic) {
    return CorruptionError(what + ": bad page magic 0x" +
                           [](uint32_t v) {
                             char buf[9];
                             std::snprintf(buf, sizeof(buf), "%08x", v);
                             return std::string(buf);
                           }(GetU32(page)));
  }
  const uint16_t version = GetU16(page + 4);
  if (version != kFormatVersion) {
    return common::Status::InvalidArgument(
        what + ": unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) +
        "; re-save the index with a matching build)");
  }
  const uint32_t stored = GetU32(page + kCrcFieldOffset);
  const uint32_t computed = PageCrc(page, page_size);
  if (stored != computed) {
    return CorruptionError(what + ": checksum mismatch (stored " +
                           std::to_string(stored) + ", computed " +
                           std::to_string(computed) + ")");
  }
  if (page[6] != static_cast<uint8_t>(expected_type)) {
    return CorruptionError(what + ": expected page type " +
                           std::to_string(static_cast<int>(expected_type)) +
                           ", found " + std::to_string(page[6]));
  }
  return common::Status::OK();
}

PageHeader ReadPageHeader(const uint8_t* page) {
  PageHeader h;
  h.type = static_cast<PageType>(page[6]);
  h.level = page[7];
  h.page_id = GetU32(page + 12);
  h.entry_count = GetU32(page + 16);
  h.total_entries = GetU32(page + 20);
  h.span = GetU16(page + 24);
  h.seq = GetU16(page + 26);
  return h;
}

}  // namespace sqp::storage
