// Generation directories + the CURRENT pointer: the crash-atomic
// checkpoint protocol (docs/STORAGE.md).
//
// A *generation* is one immutable base image plus the write-ahead log
// that grows on top of it. The log is folded by writing a brand-new
// generation aside — the old one is never touched — and then publishing
// the new one through a single atomic flip of the CURRENT pointer:
//
//   gen-N   (base image + WAL)          <- CURRENT
//   gen-N+1 (fresh fold of gen-N + log) <- written aside, fsynced
//   CURRENT := gen-N+1                  <- THE commit point (atomic)
//
// Because every generation carries its own WAL, the flip atomically
// switches to an *empty* log: there is no window where a stale log could
// be replayed onto the freshly folded base. Recovery on open reads
// CURRENT, opens exactly that generation (half-written ones are never
// named by it), and garbage-collects every other generation as an orphan
// of a crashed or interrupted checkpoint.
//
// GenerationEnv abstracts where generations live:
//   * FileGenerationEnv — the durable backend. CURRENT is a text file
//     published via write-tmp + fsync + rename (+ directory fsync);
//     generation N is the subdirectory gen-N/ holding the disk files and
//     a gen-N/wal/ log. A directory written by SaveIndexToDir (disk files
//     at the root, log in wal/) is read as legacy "generation 0", so
//     pre-generation images open unchanged; their first checkpoint
//     migrates them to gen-1 + CURRENT.
//   * MemGenerationEnv — the crash-harness backend: all generations and
//     the pointer share ONE caller-provided PageStore, so a single
//     fault-injection decorator runs the power-cut clock through every
//     write of the fold — generation writes, syncs, and the pointer flip
//     itself — and a second env over the same bytes sees exactly the
//     surviving state. The pointer lives on disk 0 as an append-only log
//     of checksummed records (last valid record wins), which models
//     rename atomicity faithfully: a dropped or torn append fails the
//     CRC gate and the pointer falls back to its previous value.

#ifndef SQP_STORAGE_GENERATION_H_
#define SQP_STORAGE_GENERATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/page_store.h"

namespace sqp::parallel {
class ParallelRStarTree;
}  // namespace sqp::parallel

namespace sqp::storage {

// One opened (or freshly created) generation: the D-disk data store of
// the base image and the generation's one-disk WAL. `owned` keeps the
// backing objects alive; `data`/`wal` point into it.
struct GenerationStores {
  PageStore* data = nullptr;
  PageStore* wal = nullptr;
  std::vector<std::unique_ptr<PageStore>> owned;
};

class GenerationEnv {
 public:
  virtual ~GenerationEnv() = default;

  // The durably published current generation. NotFound when nothing has
  // ever been published (and, for FileGenerationEnv, no legacy image
  // exists either).
  virtual common::Result<uint64_t> ReadCurrent() = 0;

  // Atomically and durably publishes `gen` as CURRENT. Once this returns
  // OK the flip survives any crash; on error the caller must re-read the
  // pointer to learn whether the flip landed (a sync can fail after the
  // bytes reached media).
  virtual common::Status PublishCurrent(uint64_t gen) = 0;

  // Every generation that holds any bytes, published or not, ascending.
  virtual common::Result<std::vector<uint64_t>> ListGenerations() = 0;

  // Opens an existing generation. A generation named by CURRENT but
  // missing its bytes is kFailedPrecondition with a descriptive message
  // (the directory was partially copied or damaged).
  virtual common::Result<GenerationStores> OpenGeneration(uint64_t gen) = 0;

  // Creates (or truncates, after a crashed earlier attempt) generation
  // `gen` with `data_disks` data disks and an empty WAL. gen >= 1.
  virtual common::Result<GenerationStores> CreateGeneration(
      uint64_t gen, int data_disks) = 0;

  // Reclaims a generation's bytes. Failure is not fatal to the caller —
  // an unreclaimed generation is an orphan the next open collects.
  virtual common::Status RemoveGeneration(uint64_t gen) = 0;
};

// --- In-memory env over one shared base store (crash harness) -----------

// Record framing of the mem env's CURRENT pointer log (disk 0), 16 bytes:
//   0  u32 magic "SQPC"
//   4  u32 crc32c over the record with this field zeroed
//   8  u64 generation
inline constexpr uint32_t kCurrentMagic = 0x43505153;
inline constexpr size_t kCurrentRecordBytes = 16;

class MemGenerationEnv : public GenerationEnv {
 public:
  // Lays generations out on `base` (not owned, must outlive the env):
  // disk 0 is the pointer log; generation g >= 1 occupies the
  // (data_disks + 1)-disk run starting at disk 1 + (g-1)*(data_disks+1),
  // data disks first, the generation's WAL disk last. Capacity is
  // whatever fits in base: (num_disks - 1) / (data_disks + 1)
  // generations. Several envs over the same base see the same durable
  // state — the recovery harness opens a pristine one over the bytes a
  // faulty one left behind.
  MemGenerationEnv(PageStore* base, int data_disks);

  common::Result<uint64_t> ReadCurrent() override;
  common::Status PublishCurrent(uint64_t gen) override;
  common::Result<std::vector<uint64_t>> ListGenerations() override;
  common::Result<GenerationStores> OpenGeneration(uint64_t gen) override;
  common::Result<GenerationStores> CreateGeneration(uint64_t gen,
                                                    int data_disks) override;
  common::Status RemoveGeneration(uint64_t gen) override;

  uint64_t max_generations() const { return max_gens_; }
  // Base-store disk indexes of generation `gen`'s run, for tests that
  // forge or inspect bytes directly.
  int first_disk_of(uint64_t gen) const;
  int wal_disk_of(uint64_t gen) const;

 private:
  common::Status CheckGen(uint64_t gen) const;
  common::Result<GenerationStores> OpenGenerationAfterCreate(uint64_t gen);
  // Scan the pointer log: offset just past the last valid record, and
  // that record's generation (0 if none).
  common::Result<std::pair<uint64_t, uint64_t>> ScanPointerLog() const;

  PageStore* base_;  // not owned
  int data_disks_;
  uint64_t max_gens_;
};

// --- File-backed env (the durable backend) ------------------------------

class FileGenerationEnv : public GenerationEnv {
 public:
  explicit FileGenerationEnv(std::string dir) : dir_(std::move(dir)) {}

  common::Result<uint64_t> ReadCurrent() override;
  common::Status PublishCurrent(uint64_t gen) override;
  common::Result<std::vector<uint64_t>> ListGenerations() override;
  common::Result<GenerationStores> OpenGeneration(uint64_t gen) override;
  common::Result<GenerationStores> CreateGeneration(uint64_t gen,
                                                    int data_disks) override;
  common::Status RemoveGeneration(uint64_t gen) override;

  const std::string& dir() const { return dir_; }
  // "<dir>" for the legacy generation 0, "<dir>/gen-N" otherwise.
  std::string GenerationPath(uint64_t gen) const;

 private:
  std::string dir_;
};

// Bootstraps an env that has never held an index: saves `index` into
// generation 1 and publishes it. (File directories usually arrive through
// SaveIndexToDir instead, which the env reads as legacy generation 0.)
common::Status InitializeGenerations(GenerationEnv* env,
                                     const parallel::ParallelRStarTree& index);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_GENERATION_H_
