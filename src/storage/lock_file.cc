#include "storage/lock_file.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sqp::storage {

namespace {

// This boot's id, or "" when the kernel does not expose one (non-Linux);
// absence disables the boot-id staleness check but keeps the pid check.
std::string ReadBootId() {
  FILE* f = std::fopen("/proc/sys/kernel/random/boot_id", "r");
  if (f == nullptr) return "";
  char buf[128] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  while (n > 0 && (buf[n - 1] == '\n' || buf[n - 1] == ' ')) --n;
  return std::string(buf, n);
}

struct Holder {
  bool parsed = false;
  pid_t pid = 0;
  std::string boot_id;
};

Holder ReadHolder(const std::string& path) {
  Holder h;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return h;  // vanished — racing release; retry handles it
  char buf[192] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  (void)n;
  long long pid = 0;
  char boot[128] = {};
  int fields = std::sscanf(buf, "%lld %127s", &pid, boot);
  if (fields >= 1 && pid > 0) {
    h.parsed = true;
    h.pid = static_cast<pid_t>(pid);
    if (fields == 2) h.boot_id = boot;
  }
  return h;
}

}  // namespace

common::Result<std::unique_ptr<LockFile>> LockFile::Acquire(
    const std::string& path) {
  const std::string boot_id = ReadBootId();
  bool broke_stale = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      std::string content = std::to_string(::getpid()) +
                            (boot_id.empty() ? "" : " " + boot_id) + "\n";
      ssize_t written = ::write(fd, content.data(), content.size());
      if (written != static_cast<ssize_t>(content.size())) {
        int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        return common::Status::Unavailable("cannot write lock file " + path +
                                           ": " + std::strerror(err));
      }
      return std::unique_ptr<LockFile>(new LockFile(path, fd, broke_stale));
    }
    if (errno != EEXIST) {
      return common::Status::Unavailable("cannot create lock file " + path +
                                         ": " + std::strerror(errno));
    }

    Holder holder = ReadHolder(path);
    bool stale = false;
    if (!holder.parsed) {
      stale = true;  // garbage content: a torn write from a crashed holder
    } else if (!boot_id.empty() && !holder.boot_id.empty() &&
               holder.boot_id != boot_id) {
      stale = true;  // lock predates this boot; every pid was recycled
    } else if (::kill(holder.pid, 0) != 0 && errno == ESRCH) {
      stale = true;  // holder process is gone
    }
    if (!stale) {
      return common::Status::FailedPrecondition(
          "index locked by pid " + std::to_string(holder.pid) + " (" + path +
          "); only one writer may open an index directory");
    }
    std::fprintf(stderr, "breaking stale lock %s (held by dead pid %lld)\n",
                 path.c_str(), static_cast<long long>(holder.pid));
    broke_stale = true;
    ::unlink(path.c_str());  // then race for O_EXCL again
  }
  return common::Status::Unavailable(
      "lock file " + path + " kept reappearing; giving up after 3 attempts");
}

LockFile::~LockFile() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

}  // namespace sqp::storage
