// Durable storage of a full parallel R*-tree index (docs/STORAGE.md).
//
// Layout per disk file (all units = the tree's page size):
//   page 0                superblock: config + root + counts + directory size
//   pages 1..dir_pages    directory: one record per node record in this file
//   remaining pages       node records (primary copies, then mirror replicas)
//
// Every page that the DiskAssigner placed on disk d is serialized into
// store disk d (replicas onto their mirror disk), so the byte layout
// mirrors the declustering assignment. Opening verifies magic, version and
// CRC32C of every page read, cross-checks the superblocks of all disks,
// re-derives parent pointers and runs the tree's full structural
// validation; any damage surfaces as a common::Status error (see
// page_format.h IsCorruption), never a crash or a silently wrong answer.

#ifndef SQP_STORAGE_INDEX_IO_H_
#define SQP_STORAGE_INDEX_IO_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "parallel/parallel_tree.h"
#include "storage/page_store.h"

namespace sqp::storage {

// Serializes `index` into `store`, replacing its contents. The store must
// have exactly index.num_disks() disks.
common::Status SaveIndex(const parallel::ParallelRStarTree& index,
                         PageStore* store);

// Deserializes an index previously written by SaveIndex. The returned
// index is fully live: queries, inserts and deletes all work, and its
// declustering map (disk, mirror, cylinder per page) is identical to the
// saved one, so simulated page-access counts match the original exactly.
common::Result<std::unique_ptr<parallel::ParallelRStarTree>> OpenIndex(
    const PageStore& store);

// Convenience wrappers over FilePageStore: one backing file per disk in
// directory `dir` (created if absent).
common::Status SaveIndexToDir(const parallel::ParallelRStarTree& index,
                              const std::string& dir);
common::Result<std::unique_ptr<parallel::ParallelRStarTree>> OpenIndexFromDir(
    const std::string& dir);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_INDEX_IO_H_
