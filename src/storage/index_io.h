// Durable storage of a full parallel R*-tree index (docs/STORAGE.md).
//
// Layout per disk file (all units = the tree's page size):
//   page 0                superblock: config + root + counts + directory size
//   pages 1..dir_pages    directory: one record per node record in this file
//   remaining pages       node records (primary copies, then mirror replicas)
//
// Every page that the DiskAssigner placed on disk d is serialized into
// store disk d (replicas onto their mirror disk), so the byte layout
// mirrors the declustering assignment. Opening verifies magic, version and
// CRC32C of every page read, cross-checks the superblocks of all disks,
// re-derives parent pointers and runs the tree's full structural
// validation; any damage surfaces as a common::Status error (see
// page_format.h IsCorruption), never a crash or a silently wrong answer.

#ifndef SQP_STORAGE_INDEX_IO_H_
#define SQP_STORAGE_INDEX_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parallel/parallel_tree.h"
#include "storage/page_store.h"

namespace sqp::storage {

// Knobs of the serialization pass.
struct SaveIndexOptions {
  // Hot-neighbor page placement: order each disk's node records so that
  // the children of one parent — the pages a traversal activates together
  // when it expands that parent — sit at adjacent file offsets, hottest
  // subtree (largest Entry.count) first. Offset-adjacent records merge
  // into a single pread on the batched read path (PlanReadRuns), so the
  // layout raises pages-per-media-read without changing a single answer:
  // only the record order inside each file moves, never which disk a page
  // lives on. Off = legacy order (tree allocation order per disk).
  bool hot_neighbor_placement = true;
};

// Serializes `index` into `store`, replacing its contents. The store must
// have exactly index.num_disks() disks.
common::Status SaveIndex(const parallel::ParallelRStarTree& index,
                         PageStore* store);
common::Status SaveIndex(const parallel::ParallelRStarTree& index,
                         PageStore* store, const SaveIndexOptions& options);

// Deserializes an index previously written by SaveIndex. The returned
// in-memory index answers queries, and its declustering map (disk, mirror,
// cylinder per page) is identical to the saved one, so simulated
// page-access counts match the original exactly. Inserts and deletes on it
// mutate only the in-memory tree; for mutations that survive a crash,
// open the image through MutableIndex (mutable_index.h), which routes them
// through the write-ahead log and copy-on-write page path.
common::Result<std::unique_ptr<parallel::ParallelRStarTree>> OpenIndex(
    const PageStore& store);

// Where one node record lives on the array: `span` whole pages starting at
// byte `offset` of `disk`'s file. span == 0 marks a PageId with no record
// (a free slot). `mirror` / `cylinder` carry the declustering placement so
// a recovered layout can rebuild the DiskAssigner without the base tree.
struct PageLocation {
  int disk = -1;
  uint64_t offset = 0;
  uint32_t span = 0;
  uint8_t level = 0;
  int32_t mirror = -1;    // mirror disk, -1 when unmirrored
  uint32_t cylinder = 0;  // cylinder of the primary copy
};

// Stable identity of a physical node record: (disk, byte offset) packed
// into one word. PageIds are reused after a delete (the tree keeps a free
// list) and copy-on-write moves a surviving PageId to fresh bytes, so
// caches and read-coalescers key on the *location* — two versions of the
// same PageId never share a key, and a key's bytes never change while any
// snapshot can reach them.
inline uint64_t PageLocationKey(const PageLocation& loc) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(loc.disk)) << 48) |
         (loc.offset & ((uint64_t{1} << 48) - 1));
}

// The metadata needed to serve queries straight from a PageStore without
// materializing the tree: configuration, root, and the page -> location
// directory (primary copies only; mirror replicas are recovery copies).
// This is what the real execution engine (src/exec/) fetches through —
// node bytes are read and checksum-verified per access, not up front.
struct IndexLayout {
  rstar::TreeConfig tree_config;
  parallel::DeclusterConfig decluster;
  rstar::PageId root = rstar::kInvalidPage;
  uint64_t object_count = 0;
  uint64_t live_pages = 0;
  uint32_t page_size = 0;
  std::vector<PageLocation> pages;  // indexed by PageId

  bool IsLive(rstar::PageId id) const {
    return id < pages.size() && pages[id].span > 0;
  }
};

// Reads and cross-checks the superblocks and directories of every disk.
// Node records themselves are not touched (and so not yet verified).
common::Result<IndexLayout> ReadIndexLayout(const PageStore& store);

// Convenience wrappers over FilePageStore: one backing file per disk in
// directory `dir` (created if absent).
common::Status SaveIndexToDir(const parallel::ParallelRStarTree& index,
                              const std::string& dir);
common::Result<std::unique_ptr<parallel::ParallelRStarTree>> OpenIndexFromDir(
    const std::string& dir);

}  // namespace sqp::storage

#endif  // SQP_STORAGE_INDEX_IO_H_
