#include "geometry/metrics.h"

#include <algorithm>
#include <limits>

namespace sqp::geometry {

double MinDistSq(const Point& p, const Rect& r) {
  SQP_DCHECK(p.dim() == r.dim());
  double sum = 0.0;
  for (int i = 0; i < p.dim(); ++i) {
    const double v = p[i];
    double d = 0.0;
    if (v < r.lo()[i]) {
      d = static_cast<double>(r.lo()[i]) - v;
    } else if (v > r.hi()[i]) {
      d = v - static_cast<double>(r.hi()[i]);
    }
    sum += d * d;
  }
  return sum;
}

double MinMaxDistSq(const Point& p, const Rect& r) {
  SQP_DCHECK(p.dim() == r.dim());
  const int n = p.dim();

  // For each dimension j, the squared distance from p_j to the *far* edge
  // coordinate rM_j (the edge further from the midpoint choice in the
  // definition), and to the *near* edge rm_j. MinMaxDist minimizes, over
  // the choice of one dimension k held at its near edge, the sum of the far
  // contributions of all other dimensions.
  //
  // Computed as total_far - far_k + near_k minimized over k.
  double total_far = 0.0;
  double best = std::numeric_limits<double>::infinity();

  // First pass: accumulate far contributions.
  for (int j = 0; j < n; ++j) {
    const double v = p[j];
    const double s = r.lo()[j];
    const double t = r.hi()[j];
    const double mid = (s + t) / 2.0;
    const double rM = (v >= mid) ? s : t;
    const double dfar = v - rM;
    total_far += dfar * dfar;
  }

  // Second pass: replace dimension k's far contribution with its near one.
  for (int k = 0; k < n; ++k) {
    const double v = p[k];
    const double s = r.lo()[k];
    const double t = r.hi()[k];
    const double mid = (s + t) / 2.0;
    const double rM = (v >= mid) ? s : t;
    const double rm = (v <= mid) ? s : t;
    const double dfar = v - rM;
    const double dnear = v - rm;
    const double candidate = total_far - dfar * dfar + dnear * dnear;
    best = std::min(best, candidate);
  }
  return best;
}

double MaxDistSq(const Point& p, const Rect& r) {
  SQP_DCHECK(p.dim() == r.dim());
  double sum = 0.0;
  for (int j = 0; j < p.dim(); ++j) {
    const double v = p[j];
    const double s = r.lo()[j];
    const double t = r.hi()[j];
    const double mid = (s + t) / 2.0;
    // Furthest vertex coordinate: t if p is in the lower half, s otherwise.
    const double far = (v <= mid) ? t : s;
    const double d = v - far;
    sum += d * d;
  }
  return sum;
}

bool BallIntersectsRect(const Point& p, double radius_sq, const Rect& r) {
  return MinDistSq(p, r) <= radius_sq;
}

bool BallContainsRect(const Point& p, double radius_sq, const Rect& r) {
  return MaxDistSq(p, r) <= radius_sq;
}

}  // namespace sqp::geometry
