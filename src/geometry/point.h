// n-dimensional points.
//
// Coordinates are stored as 32-bit floats — one 4-byte machine word each,
// matching the paper's CPU cost model and the page-capacity arithmetic of
// the R*-tree (an MBR occupies 2*d words). All distance arithmetic is done
// in double precision.

#ifndef SQP_GEOMETRY_POINT_H_
#define SQP_GEOMETRY_POINT_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/check.h"

namespace sqp::geometry {

using Coord = float;

class Point {
 public:
  Point() = default;

  // A point at the origin of `dim`-dimensional space.
  explicit Point(int dim) : coords_(static_cast<size_t>(dim), 0.0f) {
    SQP_CHECK(dim >= 1);
  }

  Point(std::initializer_list<double> values) {
    coords_.reserve(values.size());
    for (double v : values) coords_.push_back(static_cast<Coord>(v));
  }

  static Point FromVector(std::vector<Coord> coords) {
    Point p;
    p.coords_ = std::move(coords);
    return p;
  }

  int dim() const { return static_cast<int>(coords_.size()); }

  Coord operator[](int i) const {
    SQP_DCHECK(i >= 0 && i < dim());
    return coords_[static_cast<size_t>(i)];
  }
  Coord& operator[](int i) {
    SQP_DCHECK(i >= 0 && i < dim());
    return coords_[static_cast<size_t>(i)];
  }

  const std::vector<Coord>& coords() const { return coords_; }

  friend bool operator==(const Point& a, const Point& b) {
    return a.coords_ == b.coords_;
  }

  // "(x0, x1, ...)" with six significant digits.
  std::string ToString() const;

 private:
  std::vector<Coord> coords_;
};

// Squared Euclidean distance between two points of equal dimensionality.
double DistanceSq(const Point& a, const Point& b);

// Euclidean distance.
double Distance(const Point& a, const Point& b);

}  // namespace sqp::geometry

#endif  // SQP_GEOMETRY_POINT_H_
