// Branch-light batch forms of the metrics in metrics.h, computing a whole
// node's entries in one pass over plane-major (structure-of-arrays) data.
//
// Input layout: `lo[j]` / `hi[j]` point at `n` contiguous floats holding
// coordinate j of every entry's MBR corner (core::FlatNode and
// core::EntryPool both expose this view). The batch loops run
// dimension-outer / entry-inner, so each output element accumulates its
// per-dimension terms in exactly the order the scalar metrics use — the
// compiler may vectorize across entries (independent lanes) but can never
// reassociate within one, which is what keeps every result bit-identical
// to MinDistSq / MinMaxDistSq / MaxDistSq on the equivalent Rect.
//
// SetForceScalarKernels(true) switches every kernel to an entry-outer
// scalar loop with the same per-entry arithmetic; the kernel-equivalence
// test sweeps both modes and asserts exact float equality against the
// Rect-based metrics. Build with -DSQP_NATIVE=ON to let the batch loops
// use the host's full SIMD width.

#ifndef SQP_GEOMETRY_KERNELS_H_
#define SQP_GEOMETRY_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"

namespace sqp::geometry {

// out[i] = MinDistSq(q, entry i). `out` holds n doubles.
void MinDistBatch(const Point& q, const float* const* lo,
                  const float* const* hi, size_t n, double* out);

// out[i] = MinMaxDistSq(q, entry i). `total_far_scratch` is caller scratch
// of n doubles (the shared first-pass accumulator), so steady-state calls
// allocate nothing.
void MinMaxDistBatch(const Point& q, const float* const* lo,
                     const float* const* hi, size_t n, double* out,
                     double* total_far_scratch);

// out[i] = MaxDistSq(q, entry i).
void MaxDistBatch(const Point& q, const float* const* lo,
                  const float* const* hi, size_t n, double* out);

// dist_out[i] = MinDistSq(q, entry i); intersects_out[i] = 1 iff the
// closed ball of squared radius `radius_sq` around q touches entry i.
void IntersectsSphereBatch(const Point& q, const float* const* lo,
                           const float* const* hi, size_t n,
                           double radius_sq, double* dist_out,
                           uint8_t* intersects_out);

// Test hook: route every batch kernel through the entry-outer scalar
// fallback. Thread-safe; affects all subsequent calls process-wide.
void SetForceScalarKernels(bool force);
bool ForceScalarKernels();

}  // namespace sqp::geometry

#endif  // SQP_GEOMETRY_KERNELS_H_
