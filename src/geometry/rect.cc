#include "geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sqp::geometry {

Rect::Rect(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  SQP_DCHECK(lo_.dim() == hi_.dim());
#ifndef NDEBUG
  for (int i = 0; i < dim(); ++i) SQP_DCHECK(lo_[i] <= hi_[i]);
#endif
}

Rect Rect::Empty(int dim) {
  Rect r;
  r.lo_ = Point(dim);
  r.hi_ = Point(dim);
  for (int i = 0; i < dim; ++i) {
    r.lo_[i] = std::numeric_limits<Coord>::infinity();
    r.hi_[i] = -std::numeric_limits<Coord>::infinity();
  }
  return r;
}

bool Rect::IsEmpty() const {
  return dim() > 0 && lo_[0] > hi_[0];
}

bool Rect::Contains(const Point& p) const {
  SQP_DCHECK(p.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& r) const {
  SQP_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    if (r.lo_[i] < lo_[i] || r.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& r) const {
  SQP_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    if (r.hi_[i] < lo_[i] || r.lo_[i] > hi_[i]) return false;
  }
  return true;
}

void Rect::ExpandToInclude(const Rect& r) {
  SQP_DCHECK(r.dim() == dim());
  for (int i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], r.lo_[i]);
    hi_[i] = std::max(hi_[i], r.hi_[i]);
  }
}

void Rect::ExpandToInclude(const Point& p) {
  ExpandToInclude(Rect::ForPoint(p));
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect r = a;
  r.ExpandToInclude(b);
  return r;
}

double Rect::Area() const {
  if (IsEmpty()) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dim(); ++i) {
    area *= static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return area;
}

double Rect::Margin() const {
  if (IsEmpty()) return 0.0;
  double margin = 0.0;
  for (int i = 0; i < dim(); ++i) {
    margin += static_cast<double>(hi_[i]) - static_cast<double>(lo_[i]);
  }
  return margin;
}

double Rect::OverlapArea(const Rect& r) const {
  SQP_DCHECK(r.dim() == dim());
  double area = 1.0;
  for (int i = 0; i < dim(); ++i) {
    const double lo = std::max(lo_[i], r.lo_[i]);
    const double hi = std::min(hi_[i], r.hi_[i]);
    if (hi < lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

Point Rect::Center() const {
  Point c(dim());
  for (int i = 0; i < dim(); ++i) {
    c[i] = static_cast<Coord>(
        (static_cast<double>(lo_[i]) + static_cast<double>(hi_[i])) / 2.0);
  }
  return c;
}

double Rect::CenterDistanceSq(const Rect& a, const Rect& b) {
  SQP_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double ca =
        (static_cast<double>(a.lo_[i]) + static_cast<double>(a.hi_[i])) / 2.0;
    const double cb =
        (static_cast<double>(b.lo_[i]) + static_cast<double>(b.hi_[i])) / 2.0;
    sum += (ca - cb) * (ca - cb);
  }
  return sum;
}

std::string Rect::ToString() const {
  return "[" + lo_.ToString() + " .. " + hi_.ToString() + "]";
}

}  // namespace sqp::geometry
