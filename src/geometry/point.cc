#include "geometry/point.h"

#include <cmath>
#include <cstdio>

namespace sqp::geometry {

std::string Point::ToString() const {
  std::string s = "(";
  char buf[32];
  for (int i = 0; i < dim(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", static_cast<double>((*this)[i]));
    if (i > 0) s += ", ";
    s += buf;
  }
  s += ")";
  return s;
}

double DistanceSq(const Point& a, const Point& b) {
  SQP_DCHECK(a.dim() == b.dim());
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSq(a, b));
}

}  // namespace sqp::geometry
