// Point-to-rectangle distance metrics used by the similarity search
// algorithms (Definitions 3-5 of the paper):
//
//   MinDist (Dmin)     — smallest possible distance from the query point to
//                        any point inside the MBR (optimistic bound).
//   MinMaxDist (Dmm)   — smallest distance within which an object inside
//                        the MBR is *guaranteed* to exist, assuming the MBR
//                        is minimal, i.e. every face touches an object
//                        (pessimistic bound; Roussopoulos et al. 1995).
//   MaxDist (Dmax)     — distance to the furthest vertex of the MBR; every
//                        object of the MBR lies within it. Drives Lemma 1's
//                        threshold Dth in CRSS.
//
// All functions return *squared* distances; the orderings and comparisons
// the algorithms need are invariant under the monotone sqrt, and avoiding
// it keeps the kernels branch-light. Invariant (tested):
//   MinDistSq <= MinMaxDistSq <= MaxDistSq for non-degenerate boxes.

#ifndef SQP_GEOMETRY_METRICS_H_
#define SQP_GEOMETRY_METRICS_H_

#include "geometry/point.h"
#include "geometry/rect.h"

namespace sqp::geometry {

// Squared Dmin. Zero iff `p` lies inside (or on the boundary of) `r`.
double MinDistSq(const Point& p, const Rect& r);

// Squared Dmm. For a degenerate (point) box this equals the squared
// point-to-point distance.
double MinMaxDistSq(const Point& p, const Rect& r);

// Squared Dmax (furthest-vertex distance).
double MaxDistSq(const Point& p, const Rect& r);

// True iff the closed ball centered at `p` with *squared* radius
// `radius_sq` intersects `r` (equivalently MinDistSq(p, r) <= radius_sq).
bool BallIntersectsRect(const Point& p, double radius_sq, const Rect& r);

// True iff `r` lies entirely inside the closed ball
// (equivalently MaxDistSq(p, r) <= radius_sq).
bool BallContainsRect(const Point& p, double radius_sq, const Rect& r);

}  // namespace sqp::geometry

#endif  // SQP_GEOMETRY_METRICS_H_
