#include "geometry/kernels.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "common/check.h"

namespace sqp::geometry {
namespace {

std::atomic<bool> g_force_scalar{false};

// Per-dimension MinDist term, shared by both loop orders. Branchless form
// of the metrics.cc comparison chain: with lo <= hi at most one of the two
// differences is positive, so their clamped sum equals the branchy pick.
inline double MinDistTerm(double v, float lo, float hi) {
  const double dlo = static_cast<double>(lo) - v;
  const double dhi = v - static_cast<double>(hi);
  return (dlo > 0.0 ? dlo : 0.0) + (dhi > 0.0 ? dhi : 0.0);
}

}  // namespace

void SetForceScalarKernels(bool force) {
  g_force_scalar.store(force, std::memory_order_relaxed);
}

bool ForceScalarKernels() {
  return g_force_scalar.load(std::memory_order_relaxed);
}

void MinDistBatch(const Point& q, const float* const* lo,
                  const float* const* hi, size_t n, double* out) {
  const int dim = q.dim();
  if (n == 0) return;
  if (ForceScalarKernels()) {
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double d = MinDistTerm(q[j], lo[j][i], hi[j][i]);
        sum += d * d;
      }
      out[i] = sum;
    }
    return;
  }
  std::fill(out, out + n, 0.0);
  for (int j = 0; j < dim; ++j) {
    const double v = q[j];
    const float* lj = lo[j];
    const float* hj = hi[j];
    for (size_t i = 0; i < n; ++i) {
      const double d = MinDistTerm(v, lj[i], hj[i]);
      out[i] += d * d;
    }
  }
}

void MinMaxDistBatch(const Point& q, const float* const* lo,
                     const float* const* hi, size_t n, double* out,
                     double* total_far_scratch) {
  const int dim = q.dim();
  if (n == 0) return;
  const double inf = std::numeric_limits<double>::infinity();
  if (ForceScalarKernels()) {
    for (size_t i = 0; i < n; ++i) {
      double total_far = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double v = q[j];
        const double s = lo[j][i];
        const double t = hi[j][i];
        const double mid = (s + t) / 2.0;
        const double rM = (v >= mid) ? s : t;
        const double dfar = v - rM;
        total_far += dfar * dfar;
      }
      double best = inf;
      for (int k = 0; k < dim; ++k) {
        const double v = q[k];
        const double s = lo[k][i];
        const double t = hi[k][i];
        const double mid = (s + t) / 2.0;
        const double rM = (v >= mid) ? s : t;
        const double rm = (v <= mid) ? s : t;
        const double dfar = v - rM;
        const double dnear = v - rm;
        best = std::min(best, total_far - dfar * dfar + dnear * dnear);
      }
      out[i] = best;
    }
    return;
  }
  std::fill(total_far_scratch, total_far_scratch + n, 0.0);
  for (int j = 0; j < dim; ++j) {
    const double v = q[j];
    const float* lj = lo[j];
    const float* hj = hi[j];
    for (size_t i = 0; i < n; ++i) {
      const double s = lj[i];
      const double t = hj[i];
      const double mid = (s + t) / 2.0;
      const double rM = (v >= mid) ? s : t;
      const double dfar = v - rM;
      total_far_scratch[i] += dfar * dfar;
    }
  }
  std::fill(out, out + n, inf);
  for (int k = 0; k < dim; ++k) {
    const double v = q[k];
    const float* lk = lo[k];
    const float* hk = hi[k];
    for (size_t i = 0; i < n; ++i) {
      const double s = lk[i];
      const double t = hk[i];
      const double mid = (s + t) / 2.0;
      const double rM = (v >= mid) ? s : t;
      const double rm = (v <= mid) ? s : t;
      const double dfar = v - rM;
      const double dnear = v - rm;
      const double candidate =
          total_far_scratch[i] - dfar * dfar + dnear * dnear;
      out[i] = std::min(out[i], candidate);
    }
  }
}

void MaxDistBatch(const Point& q, const float* const* lo,
                  const float* const* hi, size_t n, double* out) {
  const int dim = q.dim();
  if (n == 0) return;
  if (ForceScalarKernels()) {
    for (size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double v = q[j];
        const double s = lo[j][i];
        const double t = hi[j][i];
        const double mid = (s + t) / 2.0;
        const double far = (v <= mid) ? t : s;
        const double d = v - far;
        sum += d * d;
      }
      out[i] = sum;
    }
    return;
  }
  std::fill(out, out + n, 0.0);
  for (int j = 0; j < dim; ++j) {
    const double v = q[j];
    const float* lj = lo[j];
    const float* hj = hi[j];
    for (size_t i = 0; i < n; ++i) {
      const double s = lj[i];
      const double t = hj[i];
      const double mid = (s + t) / 2.0;
      const double far = (v <= mid) ? t : s;
      const double d = v - far;
      out[i] += d * d;
    }
  }
}

void IntersectsSphereBatch(const Point& q, const float* const* lo,
                           const float* const* hi, size_t n,
                           double radius_sq, double* dist_out,
                           uint8_t* intersects_out) {
  MinDistBatch(q, lo, hi, n, dist_out);
  for (size_t i = 0; i < n; ++i) {
    intersects_out[i] = dist_out[i] <= radius_sq ? 1 : 0;
  }
}

}  // namespace sqp::geometry
