// Axis-aligned hyper-rectangles (Minimum Bounding Rectangles).

#ifndef SQP_GEOMETRY_RECT_H_
#define SQP_GEOMETRY_RECT_H_

#include <string>

#include "geometry/point.h"

namespace sqp::geometry {

// A closed axis-aligned box [lo, hi] in n-d space. Degenerate boxes
// (lo == hi in some or all dimensions) are valid and represent points or
// lower-dimensional slabs.
class Rect {
 public:
  Rect() = default;

  // Box spanning lo..hi. Requires lo[i] <= hi[i] for all i.
  Rect(Point lo, Point hi);

  // The degenerate box covering exactly `p`.
  static Rect ForPoint(const Point& p) { return Rect(p, p); }

  // A box positioned "nowhere": lo = +inf, hi = -inf per dimension.
  // ExpandToInclude() grows it to the union of everything added; useful as
  // the identity element of Union.
  static Rect Empty(int dim);

  int dim() const { return lo_.dim(); }
  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }

  // True iff constructed with Empty() and never expanded.
  bool IsEmpty() const;

  bool Contains(const Point& p) const;
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Rect& r) const;

  // Grows this box to cover `r` / `p`.
  void ExpandToInclude(const Rect& r);
  void ExpandToInclude(const Point& p);

  // The smallest box covering both arguments.
  static Rect Union(const Rect& a, const Rect& b);

  // Hyper-volume: product of side lengths (0 for degenerate boxes).
  double Area() const;

  // Sum of side lengths — the R* "margin" used in split selection.
  double Margin() const;

  // Hyper-volume of the intersection with `r` (0 if disjoint).
  double OverlapArea(const Rect& r) const;

  Point Center() const;

  // Squared distance between the centers of two boxes (R* split metric).
  static double CenterDistanceSq(const Rect& a, const Rect& b);

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

}  // namespace sqp::geometry

#endif  // SQP_GEOMETRY_RECT_H_
