// SS-tree (White & Jain, ICDE 1996): a similarity index whose regions are
// bounding *spheres* around subtree centroids instead of rectangles.
// Implemented as the paper's §5 future-work demonstration that the CRSS
// approach "supports ... SS-trees with some modifications": every entry
// carries the subtree object count, so the Lemma 1 threshold transfers —
// with sphere metrics MinDist = max(0, |q-c| - r) and MaxDist = |q-c| + r
// replacing the rectangle kernels (spheres have no MinMaxDist analogue;
// the activation test uses full containment, see ss_search.h).
//
// Structure follows White & Jain: insertion descends to the child with
// the nearest centroid; overflow triggers one forced reinsertion per
// level (the R* idea, which they adopt) and then a split along the
// coordinate of maximum centroid variance at the point minimizing the
// summed group variance. Parent entries store the exact aggregate
// centroid (weighted mean) and a conservative bounding radius.

#ifndef SQP_SSTREE_SSTREE_H_
#define SQP_SSTREE_SSTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "rstar/types.h"

namespace sqp::sstree {

using rstar::ObjectId;
using rstar::PageId;
using rstar::kInvalidObject;
using rstar::kInvalidPage;

struct SsTreeConfig {
  int dim = 2;
  int page_size_bytes = 4096;
  double min_fill_fraction = 0.4;
  double reinsert_fraction = 0.3;
  bool forced_reinsert = true;
  int max_entries_override = 0;

  // SR-tree mode (Katayama & Satoh, SIGMOD 1997): every entry stores a
  // bounding rectangle alongside its bounding sphere; the effective
  // region is their intersection, so MinDist is the larger and MaxDist
  // the smaller of the two kernels. Costs 8*dim extra bytes per entry
  // (lower fan-out) in exchange for much tighter regions.
  bool store_rects = false;

  // Entry footprint: centroid (4 bytes/dim), radius (4), pointer + count
  // (8), plus the MBR (8 bytes/dim) in SR-tree mode.
  int EntryBytes() const {
    return 4 * dim + 12 + (store_rects ? 8 * dim : 0);
  }
  int MaxEntries() const;
  int MinEntries() const;
  int ReinsertCount() const;
  void Validate() const;
};

// One slot of an SS-tree node: the bounding sphere of a subtree (or a
// data point, with radius 0) plus the object count.
struct SsEntry {
  geometry::Point centroid;
  double radius = 0.0;
  uint32_t count = 0;
  PageId child = kInvalidPage;
  ObjectId object = kInvalidObject;
  // SR-tree mode only; dim() == 0 in plain SS-tree mode.
  geometry::Rect rect;
};

struct SsNode {
  PageId id = kInvalidPage;
  PageId parent = kInvalidPage;
  int level = 0;
  std::vector<SsEntry> entries;

  bool IsLeaf() const { return level == 0; }
  uint64_t ObjectCount() const {
    uint64_t c = 0;
    for (const SsEntry& e : entries) c += e.count;
    return c;
  }
};

class SsTree {
 public:
  explicit SsTree(const SsTreeConfig& config);

  SsTree(const SsTree&) = delete;
  SsTree& operator=(const SsTree&) = delete;

  void Insert(const geometry::Point& p, ObjectId id);

  // Removes the entry for (p, id); NotFound if absent.
  common::Status Delete(const geometry::Point& p, ObjectId id);

  const SsTreeConfig& config() const { return config_; }
  PageId root() const { return root_; }
  const SsNode& node(PageId id) const;
  uint64_t size() const { return size_; }
  size_t NodeCount() const { return live_nodes_; }
  int Height() const;

  // Checks sphere containment, counts, levels, fill factors, parent links
  // and centroid consistency.
  common::Status Validate() const;

 private:
  SsNode& MutableNode(PageId id);
  PageId AllocateNode(int level);
  void FreeNode(PageId id);

  PageId ChooseSubtree(const geometry::Point& centroid,
                       int target_level) const;
  void InsertEntry(const SsEntry& e, int target_level,
                   std::vector<bool>& reinserted);
  void OverflowTreatment(PageId nid, std::vector<bool>& reinserted);
  void ForcedReinsert(PageId nid, std::vector<bool>& reinserted);
  void Split(PageId nid, std::vector<bool>& reinserted);
  void RefreshUpward(PageId nid);

  // Aggregate sphere of a node's entries: weighted-mean centroid and the
  // smallest conservative radius covering every child sphere.
  SsEntry Summarize(const SsNode& n) const;

  PageId FindLeaf(const geometry::Point& p, ObjectId id) const;
  void CondenseTree(PageId leaf);
  common::Status ValidateNode(PageId nid, int expected_level,
                              bool is_root) const;

  SsTreeConfig config_;
  std::vector<std::unique_ptr<SsNode>> nodes_;
  std::vector<PageId> free_list_;
  PageId root_;
  uint64_t size_ = 0;
  size_t live_nodes_ = 0;
};

// Sphere distance kernels (squared, like the rectangle metrics).
double SphereMinDistSq(const geometry::Point& q, const SsEntry& e);
double SphereMaxDistSq(const geometry::Point& q, const SsEntry& e);

// Effective kernels of an entry: the sphere alone (SS-tree) or the
// sphere-rectangle intersection (SR-tree): the true minimum distance is
// at least both lower bounds, the true maximum at most both upper bounds.
double EntryMinDistSq(const geometry::Point& q, const SsEntry& e);
double EntryMaxDistSq(const geometry::Point& q, const SsEntry& e);

}  // namespace sqp::sstree

#endif  // SQP_SSTREE_SSTREE_H_
