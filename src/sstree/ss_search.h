// Similarity search over the SS-tree: the exact best-first k-NN and the
// CRSS adaptation announced in the paper's §1/§5 ("the proposed similarity
// search algorithm supports ... SS-trees ... with some modifications").
//
// The modifications: sphere kernels replace the rectangle kernels, and —
// since bounding spheres have no MinMaxDist (no face-touching guarantee) —
// the candidate-reduction criterion activates an entry only when its
// sphere lies *entirely* inside the threshold ball (MaxDist <= Dth);
// everything else intersecting the ball is deferred to the candidate
// stack. Lemma 1 carries over unchanged because SS-tree entries carry the
// same subtree object counts.
//
// SsCrss reports batch-level statistics equivalent to the R*-tree
// executors' so access-method comparisons are apples-to-apples.

#ifndef SQP_SSTREE_SS_SEARCH_H_
#define SQP_SSTREE_SS_SEARCH_H_

#include <cstddef>

#include "core/knn_result.h"
#include "geometry/point.h"
#include "sstree/sstree.h"

namespace sqp::sstree {

struct SsSearchStats {
  size_t pages_fetched = 0;
  size_t steps = 0;        // batches
  size_t max_batch = 0;
};

struct SsKnnOutput {
  core::KnnResultSet result;
  SsSearchStats stats;
};

// Exact k-NN via best-first (Hjaltason-Samet) traversal; its page count is
// the SS-tree's weak-optimal reference.
SsKnnOutput SsExactKnn(const SsTree& tree, const geometry::Point& q,
                       size_t k);

struct SsCrssOptions {
  // Activation batch bound u = number of disks.
  int max_activation = 10;
};

// Count-guided batched k-NN — CRSS transplanted onto bounding spheres.
// Runs to completion immediately (sequential executor semantics) and
// reports the batch structure it would have issued to a disk array.
SsKnnOutput SsCrss(const SsTree& tree, const geometry::Point& q, size_t k,
                   const SsCrssOptions& options = {});

}  // namespace sqp::sstree

#endif  // SQP_SSTREE_SS_SEARCH_H_
