#include "sstree/ss_search.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/check.h"

namespace sqp::sstree {
namespace {

struct QueueItem {
  double min_dist_sq;
  PageId page;
};
struct Closer {
  bool operator()(const QueueItem& a, const QueueItem& b) const {
    if (a.min_dist_sq != b.min_dist_sq) return a.min_dist_sq > b.min_dist_sq;
    return a.page > b.page;
  }
};

// Lemma 1 on sphere entries: the MaxDist-sorted prefix whose counts reach
// k bounds the k-th NN distance. Returns +infinity when the pool holds
// fewer than k objects (no valid bound), mirroring core::ComputeLemma1.
struct SphereLemma1 {
  double dth_sq = std::numeric_limits<double>::infinity();
  uint64_t total_count = 0;
};

SphereLemma1 ComputeSphereLemma1(const geometry::Point& q,
                                 const std::vector<SsEntry>& pool,
                                 uint64_t k) {
  SphereLemma1 out;
  if (pool.empty()) return out;
  std::vector<std::pair<double, uint32_t>> by_max;
  by_max.reserve(pool.size());
  for (const SsEntry& e : pool) {
    by_max.emplace_back(EntryMaxDistSq(q, e), e.count);
    out.total_count += e.count;
  }
  if (out.total_count < k) return out;
  std::sort(by_max.begin(), by_max.end());
  uint64_t acc = 0;
  for (const auto& [dist, count] : by_max) {
    acc += count;
    if (acc >= k) {
      out.dth_sq = dist;
      break;
    }
  }
  return out;
}

}  // namespace

SsKnnOutput SsExactKnn(const SsTree& tree, const geometry::Point& q,
                       size_t k) {
  SQP_CHECK(k >= 1);
  SsKnnOutput out{core::KnnResultSet(k), {}};
  std::priority_queue<QueueItem, std::vector<QueueItem>, Closer> frontier;
  frontier.push({0.0, tree.root()});
  while (!frontier.empty()) {
    const QueueItem item = frontier.top();
    frontier.pop();
    if (out.result.Full() && item.min_dist_sq > out.result.KthDistSq()) {
      break;
    }
    const SsNode& n = tree.node(item.page);
    ++out.stats.pages_fetched;
    ++out.stats.steps;
    out.stats.max_batch = 1;
    for (const SsEntry& e : n.entries) {
      const double d = EntryMinDistSq(q, e);
      if (n.IsLeaf()) {
        out.result.Add(e.object, d);
      } else if (!out.result.Full() || d <= out.result.KthDistSq()) {
        frontier.push({d, e.child});
      }
    }
  }
  return out;
}

SsKnnOutput SsCrss(const SsTree& tree, const geometry::Point& q, size_t k,
                   const SsCrssOptions& options) {
  SQP_CHECK(k >= 1);
  SQP_CHECK(options.max_activation >= 1);
  SsKnnOutput out{core::KnnResultSet(k), {}};

  struct Candidate {
    double min_dist_sq;
    PageId page;
    uint32_t count;
  };
  auto by_min = [](const Candidate& a, const Candidate& b) {
    if (a.min_dist_sq != b.min_dist_sq) return a.min_dist_sq < b.min_dist_sq;
    return a.page < b.page;
  };
  // Stack of candidate runs; each run sorted descending so the nearest
  // candidate pops from the back (guard semantics as in core::Crss).
  std::vector<std::vector<Candidate>> stack;
  double dth_sq = std::numeric_limits<double>::infinity();
  const size_t u = static_cast<size_t>(options.max_activation);

  std::vector<PageId> batch = {tree.root()};
  while (true) {
    if (batch.empty()) {
      // Pop the next viable candidate run.
      bool found = false;
      while (!stack.empty() && !found) {
        std::vector<Candidate>& run = stack.back();
        std::vector<Candidate> survivors;
        while (!run.empty()) {
          const Candidate c = run.back();
          if (c.min_dist_sq > dth_sq) {
            run.clear();
            break;
          }
          survivors.push_back(c);
          run.pop_back();
        }
        stack.pop_back();
        if (survivors.empty()) continue;
        if (survivors.size() > u) {
          std::vector<Candidate> rest(
              survivors.begin() + static_cast<std::ptrdiff_t>(u),
              survivors.end());
          std::reverse(rest.begin(), rest.end());
          stack.push_back(std::move(rest));
          survivors.resize(u);
        }
        for (const Candidate& c : survivors) batch.push_back(c.page);
        found = true;
      }
      if (!found) break;  // terminate
    }

    // Fetch the batch.
    ++out.stats.steps;
    out.stats.pages_fetched += batch.size();
    out.stats.max_batch = std::max(out.stats.max_batch, batch.size());
    const bool leaf_batch = tree.node(batch[0]).IsLeaf();

    if (leaf_batch) {
      for (PageId id : batch) {
        const SsNode& n = tree.node(id);
        for (const SsEntry& e : n.entries) {
          out.result.Add(e.object, geometry::DistanceSq(q, e.centroid));
        }
      }
      dth_sq = std::min(dth_sq, out.result.KthDistSq());
      batch.clear();
      continue;
    }

    std::vector<SsEntry> pool;
    for (PageId id : batch) {
      const SsNode& n = tree.node(id);
      pool.insert(pool.end(), n.entries.begin(), n.entries.end());
    }
    batch.clear();

    const SphereLemma1 lemma = ComputeSphereLemma1(q, pool, k);
    dth_sq = std::min(dth_sq, lemma.dth_sq);
    dth_sq = std::min(dth_sq, out.result.KthDistSq());

    std::vector<Candidate> active, deferred;
    for (const SsEntry& e : pool) {
      const double dmin = EntryMinDistSq(q, e);
      if (dmin > dth_sq) continue;  // rejected
      const Candidate c{dmin, e.child, e.count};
      // Sphere modification: no MinMaxDist exists, so only regions fully
      // inside the threshold ball are guaranteed useful.
      if (EntryMaxDistSq(q, e) <= dth_sq) {
        active.push_back(c);
      } else {
        deferred.push_back(c);
      }
    }
    std::sort(active.begin(), active.end(), by_min);
    std::sort(deferred.begin(), deferred.end(), by_min);

    while (active.size() > u) {
      deferred.insert(std::lower_bound(deferred.begin(), deferred.end(),
                                       active.back(), by_min),
                      active.back());
      active.pop_back();
    }
    // Lower bound l: guarantee the activated spheres cover >= k objects
    // while the result set is not yet full.
    if (!out.result.Full()) {
      uint64_t covered = 0;
      for (const Candidate& c : active) covered += c.count;
      const uint64_t needed = std::min<uint64_t>(k, lemma.total_count);
      size_t next = 0;
      while (covered < needed && next < deferred.size()) {
        covered += deferred[next].count;
        active.push_back(deferred[next]);
        ++next;
      }
      deferred.erase(deferred.begin(),
                     deferred.begin() + static_cast<std::ptrdiff_t>(next));
      std::sort(active.begin(), active.end(), by_min);
    }
    if (!deferred.empty()) {
      std::reverse(deferred.begin(), deferred.end());
      stack.push_back(std::move(deferred));
    }
    for (const Candidate& c : active) batch.push_back(c.page);
  }
  return out;
}

}  // namespace sqp::sstree
