#include "sstree/sstree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "geometry/metrics.h"

namespace sqp::sstree {
namespace {

using geometry::Point;

// Tolerance for floating-point sphere containment checks in Validate().
constexpr double kEps = 1e-6;

double Dist(const Point& a, const Point& b) {
  return std::sqrt(geometry::DistanceSq(a, b));
}

}  // namespace

int SsTreeConfig::MaxEntries() const {
  if (max_entries_override > 0) return max_entries_override;
  const int m = (page_size_bytes - 24) / EntryBytes();
  return std::max(m, 4);
}

int SsTreeConfig::MinEntries() const {
  const int m = static_cast<int>(MaxEntries() * min_fill_fraction);
  return std::clamp(m, 2, MaxEntries() / 2);
}

int SsTreeConfig::ReinsertCount() const {
  const int p = static_cast<int>(MaxEntries() * reinsert_fraction);
  return std::clamp(p, 1, MaxEntries() - MinEntries());
}

void SsTreeConfig::Validate() const {
  SQP_CHECK(dim >= 1);
  SQP_CHECK(page_size_bytes >= 256);
  SQP_CHECK(min_fill_fraction > 0.0 && min_fill_fraction <= 0.5);
  SQP_CHECK(MaxEntries() >= 2 * MinEntries());
}

double SphereMinDistSq(const Point& q, const SsEntry& e) {
  const double d = Dist(q, e.centroid) - e.radius;
  return d <= 0.0 ? 0.0 : d * d;
}

double SphereMaxDistSq(const Point& q, const SsEntry& e) {
  const double d = Dist(q, e.centroid) + e.radius;
  return d * d;
}

double EntryMinDistSq(const Point& q, const SsEntry& e) {
  const double sphere = SphereMinDistSq(q, e);
  if (e.rect.dim() == 0) return sphere;
  return std::max(sphere, geometry::MinDistSq(q, e.rect));
}

double EntryMaxDistSq(const Point& q, const SsEntry& e) {
  const double sphere = SphereMaxDistSq(q, e);
  if (e.rect.dim() == 0) return sphere;
  return std::min(sphere, geometry::MaxDistSq(q, e.rect));
}

SsTree::SsTree(const SsTreeConfig& config)
    : config_(config), root_(kInvalidPage) {
  config_.Validate();
  root_ = AllocateNode(0);
}

const SsNode& SsTree::node(PageId id) const {
  SQP_CHECK(id < nodes_.size() && nodes_[id] != nullptr);
  return *nodes_[id];
}

SsNode& SsTree::MutableNode(PageId id) {
  SQP_CHECK(id < nodes_.size() && nodes_[id] != nullptr);
  return *nodes_[id];
}

PageId SsTree::AllocateNode(int level) {
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = std::make_unique<SsNode>();
  } else {
    id = static_cast<PageId>(nodes_.size());
    nodes_.push_back(std::make_unique<SsNode>());
  }
  SsNode& n = *nodes_[id];
  n.id = id;
  n.level = level;
  ++live_nodes_;
  return id;
}

void SsTree::FreeNode(PageId id) {
  SQP_CHECK(id < nodes_.size() && nodes_[id] != nullptr);
  nodes_[id].reset();
  free_list_.push_back(id);
  --live_nodes_;
}

int SsTree::Height() const { return node(root_).level + 1; }

SsEntry SsTree::Summarize(const SsNode& n) const {
  SQP_DCHECK(!n.entries.empty());
  SsEntry out;
  out.child = n.id;
  uint64_t total = 0;
  std::vector<double> acc(static_cast<size_t>(config_.dim), 0.0);
  for (const SsEntry& e : n.entries) {
    total += e.count;
    for (int i = 0; i < config_.dim; ++i) {
      acc[static_cast<size_t>(i)] +=
          static_cast<double>(e.centroid[i]) * e.count;
    }
  }
  SQP_CHECK(total > 0);
  Point c(config_.dim);
  for (int i = 0; i < config_.dim; ++i) {
    c[i] = static_cast<geometry::Coord>(acc[static_cast<size_t>(i)] /
                                        static_cast<double>(total));
  }
  double radius = 0.0;
  for (const SsEntry& e : n.entries) {
    radius = std::max(radius, Dist(c, e.centroid) + e.radius);
  }
  out.centroid = std::move(c);
  out.radius = radius;
  out.count = static_cast<uint32_t>(total);
  if (config_.store_rects) {
    geometry::Rect r = geometry::Rect::Empty(config_.dim);
    for (const SsEntry& e : n.entries) {
      if (e.rect.dim() > 0) {
        r.ExpandToInclude(e.rect);
      } else {
        r.ExpandToInclude(e.centroid);
      }
    }
    out.rect = std::move(r);
  }
  return out;
}

void SsTree::Insert(const Point& p, ObjectId id) {
  SQP_CHECK(p.dim() == config_.dim);
  SsEntry e;
  e.centroid = p;
  e.radius = 0.0;
  e.count = 1;
  e.object = id;
  if (config_.store_rects) e.rect = geometry::Rect::ForPoint(p);
  std::vector<bool> reinserted(64, false);
  InsertEntry(e, 0, reinserted);
  ++size_;
}

PageId SsTree::ChooseSubtree(const Point& centroid,
                             int target_level) const {
  PageId nid = root_;
  while (node(nid).level > target_level) {
    const SsNode& n = node(nid);
    SQP_DCHECK(!n.entries.empty());
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n.entries.size(); ++i) {
      const double d = geometry::DistanceSq(centroid,
                                            n.entries[i].centroid);
      if (d < best_dist) {
        best_dist = d;
        best = i;
      }
    }
    nid = n.entries[best].child;
  }
  return nid;
}

void SsTree::InsertEntry(const SsEntry& e, int target_level,
                         std::vector<bool>& reinserted) {
  SQP_CHECK(target_level <= node(root_).level);
  const PageId nid = ChooseSubtree(e.centroid, target_level);
  SsNode& n = MutableNode(nid);
  n.entries.push_back(e);
  if (e.child != kInvalidPage) MutableNode(e.child).parent = nid;
  RefreshUpward(nid);
  if (static_cast<int>(n.entries.size()) > config_.MaxEntries()) {
    OverflowTreatment(nid, reinserted);
  }
}

void SsTree::OverflowTreatment(PageId nid, std::vector<bool>& reinserted) {
  const SsNode& n = node(nid);
  const size_t lvl = static_cast<size_t>(n.level);
  if (nid != root_ && config_.forced_reinsert && lvl < reinserted.size() &&
      !reinserted[lvl]) {
    reinserted[lvl] = true;
    ForcedReinsert(nid, reinserted);
  } else {
    Split(nid, reinserted);
  }
}

void SsTree::ForcedReinsert(PageId nid, std::vector<bool>& reinserted) {
  SsNode& n = MutableNode(nid);
  const int level = n.level;
  const SsEntry summary = Summarize(n);
  const int p = config_.ReinsertCount();

  std::vector<size_t> order(n.entries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> dist(n.entries.size());
  for (size_t i = 0; i < n.entries.size(); ++i) {
    dist[i] =
        geometry::DistanceSq(n.entries[i].centroid, summary.centroid);
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return dist[a] > dist[b]; });

  std::vector<SsEntry> evicted;
  std::vector<bool> remove(n.entries.size(), false);
  for (int i = 0; i < p; ++i) {
    evicted.push_back(n.entries[order[static_cast<size_t>(i)]]);
    remove[order[static_cast<size_t>(i)]] = true;
  }
  std::vector<SsEntry> kept;
  for (size_t i = 0; i < n.entries.size(); ++i) {
    if (!remove[i]) kept.push_back(n.entries[i]);
  }
  n.entries = std::move(kept);
  RefreshUpward(nid);
  for (auto it = evicted.rbegin(); it != evicted.rend(); ++it) {
    InsertEntry(*it, level, reinserted);
  }
}

void SsTree::Split(PageId nid, std::vector<bool>& reinserted) {
  SsNode& n = MutableNode(nid);
  const int level = n.level;
  const int m = config_.MinEntries();
  const int total = static_cast<int>(n.entries.size());
  SQP_CHECK(total >= 2 * m);

  // White-Jain split: the coordinate with the highest variance of the
  // entry centroids, then the split point minimizing the summed group
  // variance along that coordinate.
  int best_axis = 0;
  double best_var = -1.0;
  for (int axis = 0; axis < config_.dim; ++axis) {
    double mean = 0.0, m2 = 0.0;
    for (const SsEntry& e : n.entries) mean += e.centroid[axis];
    mean /= total;
    for (const SsEntry& e : n.entries) {
      const double d = e.centroid[axis] - mean;
      m2 += d * d;
    }
    if (m2 > best_var) {
      best_var = m2;
      best_axis = axis;
    }
  }

  std::vector<size_t> order(n.entries.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return n.entries[a].centroid[best_axis] <
           n.entries[b].centroid[best_axis];
  });

  // Prefix sums of coordinate and its square for O(1) variance of any
  // prefix/suffix.
  std::vector<double> pref(order.size() + 1, 0.0), pref2(order.size() + 1,
                                                         0.0);
  for (size_t i = 0; i < order.size(); ++i) {
    const double v = n.entries[order[i]].centroid[best_axis];
    pref[i + 1] = pref[i] + v;
    pref2[i + 1] = pref2[i] + v * v;
  }
  auto group_var = [&](size_t lo, size_t hi) {  // [lo, hi)
    const double cnt = static_cast<double>(hi - lo);
    const double sum = pref[hi] - pref[lo];
    const double sum2 = pref2[hi] - pref2[lo];
    return sum2 - sum * sum / cnt;
  };

  int best_split = m;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int s = m; s <= total - m; ++s) {
    const double cost = group_var(0, static_cast<size_t>(s)) +
                        group_var(static_cast<size_t>(s), order.size());
    if (cost < best_cost) {
      best_cost = cost;
      best_split = s;
    }
  }

  std::vector<SsEntry> group1, group2;
  for (size_t i = 0; i < order.size(); ++i) {
    (static_cast<int>(i) < best_split ? group1 : group2)
        .push_back(n.entries[order[i]]);
  }
  n.entries = std::move(group1);

  const PageId new_id = AllocateNode(level);
  SsNode& nn = MutableNode(new_id);
  nn.entries = std::move(group2);
  for (const SsEntry& e : nn.entries) {
    if (e.child != kInvalidPage) MutableNode(e.child).parent = new_id;
  }

  if (nid == root_) {
    const PageId new_root = AllocateNode(level + 1);
    SsNode& r = MutableNode(new_root);
    SsNode& old = MutableNode(nid);
    r.entries.push_back(Summarize(old));
    r.entries.push_back(Summarize(nn));
    old.parent = new_root;
    nn.parent = new_root;
    root_ = new_root;
    return;
  }

  const PageId parent_id = n.parent;
  SsNode& parent = MutableNode(parent_id);
  nn.parent = parent_id;
  parent.entries.push_back(Summarize(nn));
  RefreshUpward(nid);
  if (static_cast<int>(parent.entries.size()) > config_.MaxEntries()) {
    OverflowTreatment(parent_id, reinserted);
  }
}

void SsTree::RefreshUpward(PageId nid) {
  PageId cur = nid;
  while (node(cur).parent != kInvalidPage) {
    const SsNode& n = node(cur);
    SsNode& parent = MutableNode(n.parent);
    bool found = false;
    for (SsEntry& e : parent.entries) {
      if (e.child == cur) {
        e = Summarize(n);
        found = true;
        break;
      }
    }
    SQP_CHECK(found);
    cur = n.parent;
  }
}

common::Status SsTree::Delete(const Point& p, ObjectId id) {
  SQP_CHECK(p.dim() == config_.dim);
  const PageId leaf = FindLeaf(p, id);
  if (leaf == kInvalidPage) {
    return common::Status::NotFound("object not in tree");
  }
  SsNode& n = MutableNode(leaf);
  for (size_t i = 0; i < n.entries.size(); ++i) {
    if (n.entries[i].object == id && n.entries[i].centroid == p) {
      n.entries.erase(n.entries.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  --size_;
  if (!n.entries.empty()) RefreshUpward(leaf);
  CondenseTree(leaf);
  while (node(root_).level > 0 && node(root_).entries.size() == 1) {
    const PageId child = node(root_).entries[0].child;
    const PageId old_root = root_;
    MutableNode(child).parent = kInvalidPage;
    root_ = child;
    FreeNode(old_root);
  }
  return common::Status::OK();
}

PageId SsTree::FindLeaf(const Point& p, ObjectId id) const {
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId nid = stack.back();
    stack.pop_back();
    const SsNode& n = node(nid);
    for (const SsEntry& e : n.entries) {
      if (n.IsLeaf()) {
        if (e.object == id && e.centroid == p) return nid;
      } else if (SphereMinDistSq(p, e) <= 1e-12) {
        // Small slack: floating-point triangle-inequality rounding can
        // leave a resident point epsilon outside an ancestor sphere.
        stack.push_back(e.child);
      }
    }
  }
  return kInvalidPage;
}

void SsTree::CondenseTree(PageId leaf) {
  struct Orphan {
    SsEntry entry;
    int level;
  };
  std::vector<Orphan> orphans;
  PageId cur = leaf;
  while (cur != root_) {
    SsNode& n = MutableNode(cur);
    const PageId parent_id = n.parent;
    if (static_cast<int>(n.entries.size()) < config_.MinEntries()) {
      SsNode& parent = MutableNode(parent_id);
      for (size_t i = 0; i < parent.entries.size(); ++i) {
        if (parent.entries[i].child == cur) {
          parent.entries.erase(parent.entries.begin() +
                               static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      for (const SsEntry& e : n.entries) orphans.push_back({e, n.level});
      FreeNode(cur);
    } else {
      RefreshUpward(cur);
    }
    cur = parent_id;
  }
  for (const Orphan& o : orphans) {
    std::vector<bool> reinserted(64, false);
    InsertEntry(o.entry, o.level, reinserted);
  }
}

common::Status SsTree::ValidateNode(PageId nid, int expected_level,
                                    bool is_root) const {
  const SsNode& n = node(nid);
  if (n.level != expected_level) {
    return common::Status::Internal("level mismatch");
  }
  const int count = static_cast<int>(n.entries.size());
  if (count > config_.MaxEntries()) {
    return common::Status::Internal("node overfull");
  }
  if (is_root) {
    if (n.level > 0 && count < 2) {
      return common::Status::Internal("internal root with < 2 entries");
    }
  } else if (count < config_.MinEntries()) {
    return common::Status::Internal("node underfull");
  }
  for (const SsEntry& e : n.entries) {
    if (n.IsLeaf()) {
      if (e.object == kInvalidObject || e.count != 1 || e.radius != 0.0) {
        return common::Status::Internal("bad leaf entry");
      }
      if (config_.store_rects &&
          !(e.rect == geometry::Rect::ForPoint(e.centroid))) {
        return common::Status::Internal("bad leaf rect");
      }
    } else {
      const SsNode& child = node(e.child);
      if (child.parent != nid) {
        return common::Status::Internal("bad parent link");
      }
      if (e.count != child.ObjectCount()) {
        return common::Status::Internal("subtree count mismatch");
      }
      // The entry's sphere must contain every child-entry sphere.
      for (const SsEntry& ce : child.entries) {
        const double need =
            std::sqrt(geometry::DistanceSq(e.centroid, ce.centroid)) +
            ce.radius;
        if (need > e.radius + kEps) {
          return common::Status::Internal("sphere containment violated");
        }
        if (config_.store_rects && ce.rect.dim() > 0 &&
            !e.rect.ContainsRect(ce.rect)) {
          return common::Status::Internal("rect containment violated");
        }
      }
      SQP_RETURN_IF_ERROR(ValidateNode(e.child, expected_level - 1, false));
    }
  }
  return common::Status::OK();
}

common::Status SsTree::Validate() const {
  const SsNode& r = node(root_);
  SQP_RETURN_IF_ERROR(ValidateNode(root_, r.level, true));
  if (r.ObjectCount() != size_ && !(size_ == 0 && r.entries.empty())) {
    return common::Status::Internal("tree size mismatch");
  }
  return common::Status::OK();
}

}  // namespace sqp::sstree
