// Closed-loop throughput: queries per second the array sustains as the
// multiprogramming level grows, per algorithm. The open-system figures
// (10-12) show response under offered load; this shows the capacity side
// of the same trade-off — BBSS's serial fetches cap per-query speed but
// interleave well, FPSS floods the queues, CRSS rides the middle.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(50000, 2, 40, 0.05, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto pool = workload::MakeQueryPoints(
      data, 200, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 20;

  PrintHeader("Closed-loop throughput (queries/s) vs clients",
              "Set: clustered 50k 2-d, Disks: 10, NNs: 20, no think time, "
              "30 queries per client");
  PrintRow({"clients", "BBSS", "FPSS", "CRSS", "WOPTSS"}, 10);
  for (int clients : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {std::to_string(clients)};
    for (core::AlgorithmKind kind :
         {core::AlgorithmKind::kBbss, core::AlgorithmKind::kFpss,
          core::AlgorithmKind::kCrss, core::AlgorithmKind::kWoptss}) {
      sim::ClosedLoopConfig loop;
      loop.clients = clients;
      loop.queries_per_client = 30;
      const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
      const sim::SimulationResult result = sim::RunClosedLoopSimulation(
          *index, pool, k,
          [&](const geometry::Point& q, size_t kk) {
            return core::MakeAlgorithm(kind, index->tree(), q, kk, disks);
          },
          cfg, loop);
      row.push_back(
          Fmt(static_cast<double>(result.queries.size()) / result.makespan,
              1));
    }
    PrintRow(row, 10);
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_throughput — sustainable load per algorithm\n");
  sqp::bench::Run();
  return 0;
}
