// Declustering ablation (paper §2.2): the authors state that after "a
// thorough experimental study" the Proximity Index heuristic consistently
// beat random assignment, data balance, area balance and round-robin for
// similarity queries over the parallel R*-tree. This bench regenerates
// that claim: CRSS response time and placement balance per policy.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(40000, 2, 60, 0.05, kDatasetSeed);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 50;
  const int disks = 10;
  const double lambda = 6.0;

  PrintHeader("Ablation: declustering policy",
              "Set: clustered 40k 2-d, Disks: 10, NNs: 50, lambda=6 q/s, "
              "algorithm: CRSS");
  PrintRow({"policy", "resp(s)", "balance"}, 16);
  for (parallel::DeclusterPolicy policy :
       {parallel::DeclusterPolicy::kProximityIndex,
        parallel::DeclusterPolicy::kRoundRobin,
        parallel::DeclusterPolicy::kRandom,
        parallel::DeclusterPolicy::kDataBalance,
        parallel::DeclusterPolicy::kAreaBalance}) {
    auto index = BuildIndex(data, disks, kResponseTimePageSize, policy);
    const double resp = MeanResponseTime(
        *index, core::AlgorithmKind::kCrss, queries, k, lambda);
    PrintRow({parallel::DeclusterPolicyName(policy), Fmt(resp),
              Fmt(index->placement().BalanceRatio(), 2)},
             16);
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_decluster — PI vs. baseline declustering\n");
  sqp::bench::Run();
  return 0;
}
