// Table 5: qualitative comparison of the four algorithms, derived from
// measured quantities on a representative configuration instead of being
// hard-coded. A check mark means "good" on that axis, as in the paper:
//
//   characteristic           BBSS   FPSS   CRSS   WOPTSS
//   number of disk accesses   ok     -      ok      ok
//   mean response time        -      -      ok      ok
//   speed-up                  -      -      ok      ok
//   scalability               -      -      ok      ok
//   intraquery parallelism    -      ok     ok      ok
//   interquery parallelism    ok   limited  ok      ok

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/sequential_executor.h"

namespace sqp::bench {
namespace {

using core::AlgorithmKind;

const std::vector<AlgorithmKind> kAll = {
    AlgorithmKind::kBbss, AlgorithmKind::kFpss, AlgorithmKind::kCrss,
    AlgorithmKind::kWoptss};

std::string Mark(bool good) { return good ? "ok" : "-"; }

void Run() {
  const workload::Dataset data =
      workload::MakeGaussian(20000, 5, kDatasetSeed);
  const auto queries = workload::MakeQueryPoints(
      data, 60, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 20;

  auto index10 = BuildIndex(data, 10, kResponseTimePageSize);
  auto index20 = BuildIndex(data, 20, kResponseTimePageSize);

  // Measurements per algorithm.
  std::map<AlgorithmKind, double> nodes, resp_light, resp_heavy, speedup,
      intra;
  for (AlgorithmKind kind : kAll) {
    nodes[kind] =
        MeanNodeAccesses(index10->tree(), kind, queries, k, 10);
    resp_light[kind] = MeanResponseTime(*index10, kind, queries, k, 1.0);
    resp_heavy[kind] = MeanResponseTime(*index10, kind, queries, k, 8.0);
    const double resp20 = MeanResponseTime(*index20, kind, queries, k, 8.0);
    speedup[kind] = resp_heavy[kind] / resp20;  // gain from doubling disks

    double max_batch = 0;
    for (const auto& q : queries) {
      auto algo = core::MakeAlgorithm(kind, index10->tree(), q, k, 10);
      max_batch += static_cast<double>(
          core::RunToCompletion(index10->tree(), algo.get()).max_batch);
    }
    intra[kind] = max_batch / static_cast<double>(queries.size());
  }

  PrintHeader("Table 5: qualitative comparison (derived from measurements)",
              "Set: gaussian 20k, Dimensions: 5, NNs: 20, Disks: 10 (and 20 "
              "for speed-up)");

  PrintRow({"measure", "BBSS", "FPSS", "CRSS", "WOPTSS"});
  auto print_measured = [&](const std::string& label,
                            std::map<AlgorithmKind, double>& m,
                            int precision) {
    PrintRow({label, Fmt(m[AlgorithmKind::kBbss], precision),
              Fmt(m[AlgorithmKind::kFpss], precision),
              Fmt(m[AlgorithmKind::kCrss], precision),
              Fmt(m[AlgorithmKind::kWoptss], precision)});
  };
  print_measured("nodes/query", nodes, 1);
  print_measured("resp(s) l=1", resp_light, 3);
  print_measured("resp(s) l=8", resp_heavy, 3);
  print_measured("speedup 2x disks", speedup, 2);
  print_measured("mean max batch", intra, 1);

  // Qualitative marks, thresholded against the best (WOPTSS) measure.
  std::printf("\n");
  PrintRow({"characteristic", "BBSS", "FPSS", "CRSS", "WOPTSS"}, 16);
  const double opt_nodes = nodes[AlgorithmKind::kWoptss];
  PrintRow({"disk accesses", Mark(nodes[AlgorithmKind::kBbss] < 3 * opt_nodes),
            Mark(nodes[AlgorithmKind::kFpss] < 3 * opt_nodes),
            Mark(nodes[AlgorithmKind::kCrss] < 3 * opt_nodes), Mark(true)},
           16);
  const double opt_resp = resp_heavy[AlgorithmKind::kWoptss];
  PrintRow({"mean resp time",
            Mark(resp_heavy[AlgorithmKind::kBbss] < 3 * opt_resp),
            Mark(resp_heavy[AlgorithmKind::kFpss] < 3 * opt_resp),
            Mark(resp_heavy[AlgorithmKind::kCrss] < 3 * opt_resp),
            Mark(true)},
           16);
  PrintRow({"speed-up", Mark(speedup[AlgorithmKind::kBbss] > 1.3),
            Mark(speedup[AlgorithmKind::kFpss] > 1.3),
            Mark(speedup[AlgorithmKind::kCrss] > 1.3), Mark(true)},
           16);
  PrintRow({"intraquery par", Mark(intra[AlgorithmKind::kBbss] > 1.5),
            Mark(intra[AlgorithmKind::kFpss] > 1.5),
            Mark(intra[AlgorithmKind::kCrss] > 1.5), Mark(true)},
           16);
  // Inter-query parallelism suffers when one query monopolizes the disks:
  // FPSS's unbounded batches do exactly that.
  PrintRow({"interquery par", Mark(true),
            Mark(intra[AlgorithmKind::kFpss] < 1.5 * 10), Mark(true),
            Mark(true)},
           16);
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_tab5_summary — qualitative comparison\n");
  sqp::bench::Run();
  return 0;
}
