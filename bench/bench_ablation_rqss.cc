// §2.3 ablation: answering a k-NN query as a series of range queries with
// growing epsilon (RQSS) vs. the purpose-built algorithms. The paper
// argues the epsilon-series approach "may face unnecessary resource
// consumption" — too small a radius forces reruns, too large a radius
// drags in far more objects than k. This bench quantifies both failure
// modes against CRSS and WOPTSS.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/rqss.h"
#include "core/sequential_executor.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(40000, 2, 30, 0.05, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 20;

  PrintHeader("Ablation: k-NN as a series of range queries (RQSS, §2.3)",
              "Set: clustered 40k 2-d, Disks: 10, NNs: 20; epsilon0 scale "
              "swept relative to the density estimate");
  PrintRow({"eps-scale", "phases", "pages/query", "objs-seen", "resp(s)"},
           13);

  // Reference rows: the real algorithms.
  auto reference = [&](core::AlgorithmKind kind) {
    double pages = 0.0;
    for (const auto& q : queries) {
      auto algo = core::MakeAlgorithm(kind, index->tree(), q, k, disks);
      pages += static_cast<double>(
          core::RunToCompletion(index->tree(), algo.get()).pages_fetched);
    }
    const double resp =
        MeanResponseTime(*index, kind, queries, k, /*lambda=*/5.0);
    std::printf("%13s%13s%13.1f%13s%13.3f\n", core::AlgorithmName(kind), "-",
                pages / static_cast<double>(queries.size()), "-", resp);
  };

  for (double scale : {0.05, 0.25, 1.0, 4.0, 16.0}) {
    double phases = 0.0, pages = 0.0, seen = 0.0;
    for (const auto& q : queries) {
      core::RqssOptions options;
      // Scale the automatic density estimate.
      const double base =
          0.5 * std::pow(static_cast<double>(k) /
                             static_cast<double>(data.size()),
                         0.5);
      options.initial_epsilon = base * scale;
      core::Rqss algo(index->tree(), q, k, options);
      const core::ExecutionStats stats =
          core::RunToCompletion(index->tree(), &algo);
      phases += algo.phases();
      pages += static_cast<double>(stats.pages_fetched);
      seen += static_cast<double>(algo.LastPhaseMatches());
    }
    const double n = static_cast<double>(queries.size());

    const auto arrivals =
        workload::PoissonArrivalTimes(queries.size(), 5.0, kArrivalSeed);
    std::vector<sim::QueryJob> jobs;
    for (size_t i = 0; i < queries.size(); ++i) {
      jobs.push_back({arrivals[i], queries[i], k});
    }
    const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
    const double resp =
        sim::RunSimulation(
            *index, jobs,
            [&](const geometry::Point& q, size_t kk) {
              core::RqssOptions options;
              const double base =
                  0.5 * std::pow(static_cast<double>(kk) /
                                     static_cast<double>(data.size()),
                                 0.5);
              options.initial_epsilon = base * scale;
              return std::make_unique<core::Rqss>(index->tree(), q, kk,
                                                  options);
            },
            cfg)
            .MeanResponseTime();
    PrintRow({Fmt(scale, 2), Fmt(phases / n, 2), Fmt(pages / n, 1),
              Fmt(seen / n, 1), Fmt(resp)},
             13);
  }
  std::printf("%13s\n", "--- vs ---");
  reference(core::AlgorithmKind::kCrss);
  reference(core::AlgorithmKind::kWoptss);
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_rqss — the epsilon-series strawman\n");
  sqp::bench::Run();
  return 0;
}
