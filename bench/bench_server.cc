// Closed-loop load test of the streaming query service over real TCP
// loopback — the end-to-end cost of src/server/ on top of the parallel
// engine: protocol framing, admission control, chunked delivery.
//
//   $ bench_server [--disks=N] [--points=N] [--queries=N] [--k=N]
//                  [--throttle=SECONDS] [--json=BENCH_server.json]
//
// The sweep is connections x deadline. Each cell starts a fresh
// QueryService + TcpServer over one shared engine (warm cache carries
// across cells the way a long-running server's would), then runs
// `connections` client threads in closed loop — connect once, then
// submit / drain the stream / submit the next — until the query budget
// is spent. Cells with a deadline demonstrate typed degradation: as the
// offered load exceeds what the array sustains inside the budget,
// queries fail fast with deadline_exceeded / resource_exhausted instead
// of running late, and the bench reports the split.
//
// Metrics come from the client side (wall-clock per completed stream,
// time to first chunk) — the numbers a user of the service experiences.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "exec/parallel_engine.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/service.h"
#include "server/tcp_server.h"
#include "storage/index_io.h"
#include "storage/page_store.h"

namespace sqp {
namespace {

struct CellResult {
  int connections = 0;
  double deadline_ms = 0.0;  // 0 = none
  double wall_s = 0.0;
  double queries_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p50_first_chunk_ms = 0.0;  // time to first streamed results
  double mean_chunks = 0.0;
  size_t ok = 0;
  size_t deadline_exceeded = 0;
  size_t shed = 0;
  size_t transport_errors = 0;
};

CellResult RunCell(server::QueryService* service, int port, int connections,
                   double deadline_ms,
                   const std::vector<geometry::Point>& points, size_t k,
                   size_t total_queries) {
  CellResult cell;
  cell.connections = connections;
  cell.deadline_ms = deadline_ms;

  std::atomic<size_t> next{0};
  std::atomic<size_t> ok{0}, late{0}, shed{0}, transport{0};
  std::atomic<uint64_t> chunks{0};
  std::mutex mu;
  common::SampleSet latencies, first_chunk;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    pool.emplace_back([&] {
      auto client = server::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        transport.fetch_add(1);
        return;
      }
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= total_queries) return;
        server::QuerySpec spec;
        spec.mode = server::QueryMode::kKnnStream;
        spec.point = points[i % points.size()];
        spec.k = k;
        spec.deadline_s = deadline_ms / 1e3;
        const auto q_start = std::chrono::steady_clock::now();
        bool saw_chunk = false;
        double first_s = 0.0;
        const server::StreamOutcome out = (*client)->Run(
            spec, [&](const std::vector<core::Neighbor>&) {
              if (!saw_chunk) {
                saw_chunk = true;
                first_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - q_start)
                              .count();
              }
            });
        const double total_s = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - q_start)
                                   .count();
        chunks.fetch_add(out.chunks);
        if (out.status.ok()) {
          ok.fetch_add(1);
          std::lock_guard<std::mutex> lock(mu);
          latencies.Add(total_s);
          if (saw_chunk) first_chunk.Add(first_s);
        } else if (out.status.code() ==
                   common::StatusCode::kDeadlineExceeded) {
          late.fetch_add(1);
        } else if (out.status.code() ==
                   common::StatusCode::kResourceExhausted) {
          shed.fetch_add(1);
        } else {
          transport.fetch_add(1);
          return;  // connection is in an unknown state; stop this client
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  cell.wall_s = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  cell.ok = ok.load();
  cell.deadline_exceeded = late.load();
  cell.shed = shed.load();
  cell.transport_errors = transport.load();
  const size_t finished = cell.ok + cell.deadline_exceeded + cell.shed;
  cell.queries_per_sec =
      cell.wall_s > 0 ? static_cast<double>(finished) / cell.wall_s : 0.0;
  cell.mean_chunks =
      cell.ok > 0 ? static_cast<double>(chunks.load()) /
                        static_cast<double>(finished)
                  : 0.0;
  if (latencies.count() > 0) {
    cell.p50_latency_ms = 1e3 * latencies.Quantile(0.5);
    cell.p95_latency_ms = 1e3 * latencies.Quantile(0.95);
  }
  if (first_chunk.count() > 0) {
    cell.p50_first_chunk_ms = 1e3 * first_chunk.Quantile(0.5);
  }
  (void)service;
  return cell;
}

}  // namespace
}  // namespace sqp

int main(int argc, char** argv) {
  using namespace sqp;
  const int disks = std::atoi(
      bench::ArgValue(argc, argv, "disks", "10").c_str());
  const size_t n_points = static_cast<size_t>(std::atoll(
      bench::ArgValue(argc, argv, "points", "30000").c_str()));
  const size_t queries = static_cast<size_t>(std::atoll(
      bench::ArgValue(argc, argv, "queries", "400").c_str()));
  const size_t k = static_cast<size_t>(std::atoll(
      bench::ArgValue(argc, argv, "k", "20").c_str()));
  const double throttle = std::atof(
      bench::ArgValue(argc, argv, "throttle", "0.0005").c_str());
  const std::string json_path =
      bench::ArgValue(argc, argv, "json", "BENCH_server.json");

  std::printf(
      "streaming service over TCP loopback: %d disks, %zu points, k=%zu, "
      "%zu queries per cell, %.1f ms/read media\n\n",
      disks, n_points, k, queries, 1e3 * throttle);

  const workload::Dataset data =
      workload::MakeClustered(n_points, 2, 10, 0.1, bench::kDatasetSeed);
  auto index = bench::BuildIndex(data, disks, bench::kResponseTimePageSize);
  storage::MemPageStore mem(index->num_disks());
  if (auto s = storage::SaveIndex(*index, &mem); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  storage::ThrottledPageStore store(&mem, throttle);

  const std::vector<int> connection_sweep = {1, 2, 4, 8};
  const std::vector<double> deadline_sweep_ms = {0.0, 50.0, 5.0};

  exec::EngineOptions eopts;
  eopts.query_threads = connection_sweep.back();
  // Keep the cache below the index's working set: the throttled media
  // stays the bottleneck, so deadline cells actually degrade under load
  // instead of serving everything from memory.
  eopts.cache_pages = static_cast<size_t>(std::atoll(
      bench::ArgValue(argc, argv, "cache", "64").c_str()));
  auto engine = exec::ParallelQueryEngine::Create(*index, &store, eopts);
  if (!engine.ok()) {
    std::fprintf(stderr, "engine failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  const auto points = workload::MakeQueryPoints(
      data, 256, workload::QueryDistribution::kDataDistributed,
      bench::kQuerySeed);

  std::vector<CellResult> cells;
  std::printf("%5s %9s %9s %9s %9s %11s %6s %9s %5s\n", "conns",
              "deadl(ms)", "q/s", "p50(ms)", "p95(ms)", "first50(ms)", "ok",
              "deadline", "shed");
  for (double deadline_ms : deadline_sweep_ms) {
    for (int connections : connection_sweep) {
      // A fresh service per cell isolates admission state; workers match
      // the client count so the pending queue only fills when the media
      // is the bottleneck.
      server::ServiceOptions sopts;
      sopts.workers = connections;
      sopts.max_pending = 2 * static_cast<size_t>(connections);
      sopts.max_chunk = 8;
      server::QueryService service(*index, engine->get(), sopts);
      auto tcp = server::TcpServer::Start(&service, {});
      if (!tcp.ok()) {
        std::fprintf(stderr, "server failed: %s\n",
                     tcp.status().ToString().c_str());
        return 1;
      }
      CellResult cell = RunCell(&service, (*tcp)->port(), connections,
                                deadline_ms, points, k, queries);
      (*tcp)->Stop();
      std::printf("%5d %9.1f %9.1f %9.3f %9.3f %11.3f %6zu %9zu %5zu\n",
                  cell.connections, cell.deadline_ms, cell.queries_per_sec,
                  cell.p50_latency_ms, cell.p95_latency_ms,
                  cell.p50_first_chunk_ms, cell.ok, cell.deadline_exceeded,
                  cell.shed);
      if (cell.transport_errors > 0) {
        std::fprintf(stderr, "  %zu transport errors\n",
                     cell.transport_errors);
      }
      cells.push_back(cell);
    }
  }

  // Conservation over the whole run, from the shared registry.
  const obs::MetricsSnapshot snap = (*engine)->metrics()->Snapshot();
  const uint64_t submitted = snap.CounterValue("sqp_server_submitted_total");
  const uint64_t completed = snap.CounterValue("sqp_server_completed_total");
  const uint64_t shed_total = snap.CounterValue("sqp_server_shed_total");
  std::printf("\nregistry: %llu submitted = %llu completed + %llu shed %s\n",
              static_cast<unsigned long long>(submitted),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(shed_total),
              submitted == completed + shed_total ? "(conserved)"
                                                  : "(VIOLATED)");

  bench::JsonWriter w;
  w.BeginObject();
  bench::StampBenchMeta(&w);
  w.Field("bench", "server");
  w.Field("mode", "knn-stream");
  w.Field("disks", disks);
  w.Field("points", static_cast<uint64_t>(n_points));
  w.Field("queries_per_cell", static_cast<uint64_t>(queries));
  w.Field("k", static_cast<uint64_t>(k));
  w.Field("throttle_read_latency_s", throttle);
  w.Field("page_size", bench::kResponseTimePageSize);
  w.Field("host_hardware_threads",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.BeginArray("cells");
  for (const CellResult& c : cells) {
    w.BeginObject();
    w.Field("connections", c.connections);
    w.Field("deadline_ms", c.deadline_ms);
    w.Field("wall_s", c.wall_s);
    w.Field("queries_per_sec", c.queries_per_sec);
    w.Field("p50_latency_ms", c.p50_latency_ms);
    w.Field("p95_latency_ms", c.p95_latency_ms);
    w.Field("p50_first_chunk_ms", c.p50_first_chunk_ms);
    w.Field("mean_chunks", c.mean_chunks);
    w.Field("ok", static_cast<uint64_t>(c.ok));
    w.Field("deadline_exceeded", static_cast<uint64_t>(c.deadline_exceeded));
    w.Field("shed", static_cast<uint64_t>(c.shed));
    w.Field("transport_errors", static_cast<uint64_t>(c.transport_errors));
    w.EndObject();
  }
  w.EndArray();
  w.BeginObject("registry");
  w.Field("submitted", submitted);
  w.Field("completed", completed);
  w.Field("shed", shed_total);
  w.Field("conserved", submitted == completed + shed_total);
  w.EndObject();
  w.EndObject();
  w.WriteFile(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return submitted == completed + shed_total ? 0 : 1;
}
