// Throughput of the real concurrent engine (src/exec/) vs query-thread
// count, over a 10-disk persisted index.
//
//   $ bench_parallel_engine [--json=BENCH_parallel_engine.json]
//       [--queries=300] [--n=30000] [--disks=10] [--throttle=0.002]
//       [--faults=0] [--fault-seed=1998]
//
// --faults=<rate> switches the binary to the fault-injection smoke run
// (docs/FAULTS.md): a >= 1000-query batch executes against the same image
// with bit flips, torn reads and transient EIO injected at <rate> per read
// plus one permanently dead page record, and the run checks that the batch
// completes with zero aborts, every successful query is bit-identical to
// the fault-free run, and every permanent-fault query carries a non-OK
// status. Exit code 0 means all three held.
//
// Two series, both over the same saved FilePageStore image:
//
//   warm       large page cache, one warm-up pass first: every fetch is a
//              cache hit, so queries are pure CPU. Thread scaling here is
//              bounded by the machine's core count (on a single-core host
//              it is ~1x by construction — the series exists to show the
//              engine adds no slowdown, not to show speedup).
//   throttled  each media access charged a fixed service time (--throttle
//              seconds, default 2 ms — a fast drive of the paper's era),
//              with a small 64-page cache that keeps the root and inner
//              levels resident (the usual DBMS setup). Leaf fetches — the
//              bulk of the I/O, spread over all disks by the declustering
//              — pay the service time, so queries are I/O-bound and the
//              per-disk worker threads genuinely overlap: an activation
//              batch of b pages on b disks costs one service time, not b,
//              and concurrent queries keep all spindles busy. This is the
//              regime the paper's disk array targets, and where the >= 3x
//              scaling claim is made.
//
// Results are printed as a table and written as JSON (--json=<path>) with
// queries/sec, p50/p95/p99 latency (exact sorted-sample and registry-
// histogram estimates) and cache hit rate per configuration, plus a
// `metering` object comparing metered vs unmetered throughput on the
// 8-thread throttled configuration (the observability layer's measured
// overhead; the bar is < 3%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "exec/parallel_engine.h"
#include "obs/metrics.h"
#include "storage/fault_injection.h"
#include "storage/index_io.h"
#include "storage/page_store.h"

namespace {

using namespace sqp;

struct RunResult {
  int threads = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double hit_rate = 0.0;
  double mean_pages = 0.0;
  // Latency percentiles as the engine's own registry histogram estimates
  // them (bucket interpolation, docs/OBSERVABILITY.md) — the numbers an
  // operator scraping sqp_engine_query_latency_seconds would see, next to
  // the exact sorted-sample ones above. Zero when run unmetered.
  double reg_p50_ms = 0.0;
  double reg_p95_ms = 0.0;
  double reg_p99_ms = 0.0;
  // Backend reads avoided by cross-query coalescing and speculative pages
  // issued by CRSS-hint prefetch, summed over the timed batch; hits are
  // demand requests served from prefetched frames, wasted the speculation
  // resolved as pointless.
  uint64_t coalesced_reads = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;
};

// One timed RunBatch on a fresh engine with `threads` query threads.
RunResult RunOnce(const parallel::ParallelRStarTree& index,
                  const storage::PageStore* store,
                  const std::vector<exec::EngineQuery>& queries, int threads,
                  size_t cache_pages, bool warm_up, bool serial_io = false,
                  bool metered = true, int prefetch_budget = 0,
                  bool prefetch_adaptive = false,
                  exec::IoBackendKind io_backend =
                      exec::IoBackendKind::kThreads) {
  exec::EngineOptions options;
  options.query_threads = threads;
  options.cache_pages = cache_pages;
  options.serial_io = serial_io;
  options.prefetch_budget = prefetch_budget;
  options.prefetch_adaptive = prefetch_adaptive;
  options.enable_metrics = metered;
  options.io_backend = io_backend;
  if (!metered) options.trace_capacity = 0;
  auto engine = exec::ParallelQueryEngine::Create(index, store, options);
  SQP_CHECK(engine.ok());
  if (warm_up) {
    (void)(*engine)->RunBatch(queries);
  }
  const exec::PageCacheStats before = (*engine)->cache().GetStats();

  const auto start = std::chrono::steady_clock::now();
  const std::vector<exec::QueryAnswer> answers = (*engine)->RunBatch(queries);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> latencies;
  double pages = 0.0;
  uint64_t coalesced = 0, prefetched = 0, pf_hits = 0, pf_wasted = 0;
  for (const exec::QueryAnswer& a : answers) {
    SQP_CHECK(a.status.ok());
    latencies.push_back(a.latency_s);
    pages += static_cast<double>(a.pages_fetched);
    coalesced += a.coalesced_reads;
    prefetched += a.prefetch_issued;
    pf_hits += a.prefetch_hits;
    pf_wasted += a.prefetch_wasted;
  }
  std::sort(latencies.begin(), latencies.end());

  const exec::PageCacheStats after = (*engine)->cache().GetStats();
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);

  RunResult r;
  r.threads = threads;
  r.qps = static_cast<double>(answers.size()) / wall;
  r.p50_ms = 1e3 * latencies[latencies.size() / 2];
  r.p95_ms = 1e3 * latencies[latencies.size() * 95 / 100];
  r.p99_ms = 1e3 * latencies[latencies.size() * 99 / 100];
  r.hit_rate = hits + misses == 0 ? 0.0 : hits / (hits + misses);
  r.mean_pages = pages / static_cast<double>(answers.size());
  r.coalesced_reads = coalesced;
  r.prefetch_issued = prefetched;
  r.prefetch_hits = pf_hits;
  r.prefetch_wasted = pf_wasted;
  if (metered) {
    // Registry view of the same latencies (warm-up queries included — the
    // histogram is cumulative — but they run the identical workload, so
    // the estimates stay representative).
    const obs::MetricsSnapshot snap = (*engine)->metrics()->Snapshot();
    if (const obs::HistogramSnapshot* h =
            snap.FindHistogram("sqp_engine_query_latency_seconds")) {
      r.reg_p50_ms = 1e3 * h->Quantile(0.50);
      r.reg_p95_ms = 1e3 * h->Quantile(0.95);
      r.reg_p99_ms = 1e3 * h->Quantile(0.99);
    }
  }
  return r;
}

// `baseline_qps` anchors the speedup column (the series' own first row
// when 0).
void PrintSeries(const char* name, const std::vector<RunResult>& series,
                 double baseline_qps = 0.0, bool uring_active = false) {
  if (baseline_qps == 0.0) baseline_qps = series.front().qps;
  std::printf("\n%s:\n%8s %10s %10s %10s %10s %8s %8s %9s %9s %8s %8s %9s\n",
              name, "threads", "q/s", "p50(ms)", "p95(ms)", "p99(ms)",
              "hit%", "pages", "coalesce", "prefetch", "pf_hit", "pf_waste",
              "speedup");
  for (const RunResult& r : series) {
    std::printf(
        "%8d %10.0f %10.3f %10.3f %10.3f %7.0f%% %8.1f %9llu %9llu %8llu "
        "%8llu %8.2fx\n",
        r.threads, r.qps, r.p50_ms, r.p95_ms, r.p99_ms, 100 * r.hit_rate,
        r.mean_pages, static_cast<unsigned long long>(r.coalesced_reads),
        static_cast<unsigned long long>(r.prefetch_issued),
        static_cast<unsigned long long>(r.prefetch_hits),
        static_cast<unsigned long long>(r.prefetch_wasted),
        r.qps / baseline_qps);
  }
  // The uring backend parks no thread per disk — the reactor drives every
  // spindle from one thread — so the worker-thread oversubscription
  // caveat does not apply to it.
  if (uring_active) return;
  const unsigned hw = std::thread::hardware_concurrency();
  for (const RunResult& r : series) {
    if (hw > 0 && static_cast<unsigned>(r.threads) > hw) {
      std::printf(
          "  WARNING: sweep reaches %d query threads but this host has "
          "only %u hardware thread(s); rows beyond %u measure "
          "oversubscription, not CPU scaling.\n",
          series.back().threads, hw, hw);
      break;
    }
  }
}

void JsonSeries(bench::JsonWriter* w, const char* name,
                const std::vector<RunResult>& series,
                double baseline_qps = 0.0) {
  if (baseline_qps == 0.0) baseline_qps = series.front().qps;
  const unsigned hw = std::thread::hardware_concurrency();
  w->BeginArray(name);
  for (const RunResult& r : series) {
    w->BeginObject();
    w->Field("threads", r.threads);
    w->Field("oversubscribed",
             hw > 0 && static_cast<unsigned>(r.threads) > hw);
    w->Field("queries_per_sec", r.qps, 5);
    w->Field("p50_latency_ms", r.p50_ms, 5);
    w->Field("p95_latency_ms", r.p95_ms, 5);
    w->Field("p99_latency_ms", r.p99_ms, 5);
    w->Field("registry_p50_latency_ms", r.reg_p50_ms, 5);
    w->Field("registry_p95_latency_ms", r.reg_p95_ms, 5);
    w->Field("registry_p99_latency_ms", r.reg_p99_ms, 5);
    w->Field("cache_hit_rate", r.hit_rate, 4);
    w->Field("mean_pages_per_query", r.mean_pages, 4);
    w->Field("coalesced_reads", r.coalesced_reads);
    w->Field("prefetch_issued", r.prefetch_issued);
    w->Field("prefetch_hits", r.prefetch_hits);
    w->Field("prefetch_wasted", r.prefetch_wasted);
    w->Field("speedup_vs_baseline", r.qps / baseline_qps, 4);
    w->EndObject();
  }
  w->EndArray();
}

bool SameNeighbors(const std::vector<core::Neighbor>& a,
                   const std::vector<core::Neighbor>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].object != b[i].object || a[i].dist_sq != b[i].dist_sq) {
      return false;
    }
  }
  return true;
}

// The acceptance smoke of the fault-injection harness: zero aborts,
// bit-identical successes, non-OK permanent-fault queries.
int RunFaultSmoke(const parallel::ParallelRStarTree& index,
                  storage::PageStore* store,
                  const std::vector<exec::EngineQuery>& queries, double rate,
                  uint64_t seed) {
  exec::EngineOptions options;
  options.query_threads = 8;
  // No cache: every fetch touches the (faulty) media, so the whole batch
  // exercises the retry path instead of the first few queries only.
  options.cache_pages = 0;

  auto clean = exec::ParallelQueryEngine::Create(index, store, options);
  SQP_CHECK(clean.ok());
  const std::vector<exec::QueryOutcome> reference =
      (*clean)->RunBatch(queries);
  for (const exec::QueryOutcome& r : reference) SQP_CHECK(r.status.ok());

  storage::FaultInjectingPageStore faulty(store, seed);
  // Create first, arm after: the layout bootstrap read stays clean, the
  // query-time record reads see every fault.
  auto engine = exec::ParallelQueryEngine::Create(index, &faulty, options);
  SQP_CHECK(engine.ok());
  for (storage::FaultKind kind :
       {storage::FaultKind::kBitFlip, storage::FaultKind::kTornRead,
        storage::FaultKind::kTransientError}) {
    storage::FaultSpec spec;
    spec.kind = kind;
    spec.probability = rate;
    faulty.AddFault(spec);
  }
  // One permanently dead record: the root page. With the cache disabled
  // every query starts by reading it, so exactly max_hits queries must
  // fail — with a descriptive status, not an abort.
  const auto root_loc =
      (*engine)->reader().LocationOf((*engine)->reader().layout().root);
  SQP_CHECK(root_loc.ok());
  storage::FaultSpec perm;
  perm.kind = storage::FaultKind::kPermanentError;
  perm.disk = root_loc->disk;
  perm.offset_lo = root_loc->offset;
  perm.offset_hi = root_loc->offset + 1;
  perm.max_hits = 3;
  faulty.AddFault(perm);

  const std::vector<exec::QueryOutcome> outcomes =
      (*engine)->RunBatch(queries);
  SQP_CHECK(outcomes.size() == queries.size());

  size_t ok_count = 0, failed = 0;
  uint64_t io_faults = 0, io_retries = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    io_faults += outcomes[i].io_faults;
    io_retries += outcomes[i].io_retries;
    if (outcomes[i].status.ok()) {
      ++ok_count;
      SQP_CHECK(SameNeighbors(outcomes[i].neighbors,
                              reference[i].neighbors));
    } else {
      ++failed;
      SQP_CHECK(!outcomes[i].status.message().empty());
    }
  }
  const storage::FaultInjectionStats fs = faulty.stats();
  // The permanent spec disarmed after max_hits injections; each one is a
  // non-retryable failure, so at least that many queries must have failed
  // (retry-exhausted transients may add more), and some queries must have
  // survived injected faults via retries.
  SQP_CHECK(fs.by_kind[static_cast<int>(
                storage::FaultKind::kPermanentError)] == 3);
  SQP_CHECK(failed >= 3);
  SQP_CHECK(ok_count > 0);
  SQP_CHECK(io_retries > 0);

  std::printf(
      "\nfault smoke: %zu queries, fault rate %.3f per read (seed %llu)\n"
      "  outcomes   %zu ok (all bit-identical to fault-free run), "
      "%zu failed with non-OK status, zero aborts\n"
      "  injector   %llu faults over %llu reads (flip %llu, torn %llu, "
      "eio %llu, dead-page %llu)\n"
      "  reader     %llu failed attempts observed, %llu retries issued\n"
      "FAULT SMOKE PASS\n",
      outcomes.size(), rate, static_cast<unsigned long long>(seed),
      ok_count, failed, static_cast<unsigned long long>(fs.faults),
      static_cast<unsigned long long>(fs.reads),
      static_cast<unsigned long long>(
          fs.by_kind[static_cast<int>(storage::FaultKind::kBitFlip)]),
      static_cast<unsigned long long>(
          fs.by_kind[static_cast<int>(storage::FaultKind::kTornRead)]),
      static_cast<unsigned long long>(fs.by_kind[static_cast<int>(
          storage::FaultKind::kTransientError)]),
      static_cast<unsigned long long>(fs.by_kind[static_cast<int>(
          storage::FaultKind::kPermanentError)]),
      static_cast<unsigned long long>(io_faults),
      static_cast<unsigned long long>(io_retries));
  return 0;
}

// CI's prefetch non-regression gate: on throttled media, adaptive
// prefetch must never fall below the no-prefetch baseline by more than
// the tolerance band at any probed thread count — the regression class
// PR 5's static budget shipped (speculation stealing demand bandwidth at
// 8 threads) stays impossible. `tolerance` is the minimum acceptable
// adaptive/off throughput ratio (0.85 = adaptive may run at most 15%
// slower before the gate trips; run-to-run noise on shared CI hosts is
// why it is not 1.0).
constexpr int kGateReps = 3;

int RunPrefetchGate(const parallel::ParallelRStarTree& index,
                    const storage::PageStore* slow,
                    const std::vector<exec::EngineQuery>& queries,
                    double tolerance) {
  bool pass = true;
  std::printf(
      "\nprefetch non-regression gate (throttled media, adaptive vs "
      "no-prefetch, best of %d reps per side, min ratio %.2f):\n",
      kGateReps, tolerance);
  for (int t : {1, 4, 8}) {
    // Min-time benchmarking, same rationale as the metering-overhead
    // measurement: on a noisy shared host interference only ever slows a
    // run, so the fastest rep per side is the least-disturbed estimate.
    // Reps alternate sides so a load transient hits both equally.
    RunResult off, adaptive;
    for (int rep = 0; rep < kGateReps; ++rep) {
      const RunResult o = RunOnce(index, slow, queries, t,
                                  /*cache_pages=*/64, /*warm_up=*/true);
      const RunResult a =
          RunOnce(index, slow, queries, t, /*cache_pages=*/64,
                  /*warm_up=*/true, /*serial_io=*/false, /*metered=*/true,
                  /*prefetch_budget=*/0, /*prefetch_adaptive=*/true);
      if (rep == 0 || o.qps > off.qps) off = o;
      if (rep == 0 || a.qps > adaptive.qps) adaptive = a;
    }
    const double ratio = adaptive.qps / off.qps;
    const bool ok = ratio >= tolerance;
    std::printf(
        "  %d threads: off %.0f q/s, adaptive %.0f q/s -> ratio %.3f "
        "(%llu speculative issued, %llu hits, %llu wasted)  %s\n",
        t, off.qps, adaptive.qps, ratio,
        static_cast<unsigned long long>(adaptive.prefetch_issued),
        static_cast<unsigned long long>(adaptive.prefetch_hits),
        static_cast<unsigned long long>(adaptive.prefetch_wasted),
        ok ? "ok" : "REGRESSION");
    if (!ok) pass = false;
  }
  std::printf(pass ? "PREFETCH GATE PASS\n" : "PREFETCH GATE FAIL\n");
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      bench::ArgValue(argc, argv, "json", "BENCH_parallel_engine.json");
  const size_t n_queries = static_cast<size_t>(
      std::atol(bench::ArgValue(argc, argv, "queries", "300").c_str()));
  const size_t n_points = static_cast<size_t>(
      std::atol(bench::ArgValue(argc, argv, "n", "30000").c_str()));
  const int disks =
      std::atoi(bench::ArgValue(argc, argv, "disks", "10").c_str());
  const double throttle =
      std::atof(bench::ArgValue(argc, argv, "throttle", "0.002").c_str());
  const double fault_rate =
      std::atof(bench::ArgValue(argc, argv, "faults", "0").c_str());
  const uint64_t fault_seed = static_cast<uint64_t>(
      std::atol(bench::ArgValue(argc, argv, "fault-seed", "1998").c_str()));
  // Prefetch policy of the prefetch series: off | <N> (fixed per-step
  // budget) | adaptive (feedback-controlled — the default and the policy
  // the committed JSON records).
  const std::string prefetch_mode =
      bench::ArgValue(argc, argv, "prefetch", "adaptive");
  const bool gate_mode =
      std::atoi(bench::ArgValue(argc, argv, "prefetch-gate", "0").c_str()) !=
      0;
  const double gate_tolerance = std::atof(
      bench::ArgValue(argc, argv, "gate-tolerance", "0.85").c_str());
  // I/O backend of the headline series: threads (default, comparable to
  // the historical JSONs) or uring. A uring request on a kernel without
  // io_uring prints the probe's reason and proceeds on threads — the same
  // graceful fallback the engine itself makes.
  const std::string io_mode = bench::ArgValue(argc, argv, "io", "threads");
  SQP_CHECK(io_mode == "threads" || io_mode == "uring");
  const exec::UringProbe uring_probe = exec::ProbeIoUring();
  exec::IoBackendKind io_kind = exec::IoBackendKind::kThreads;
  std::string io_active = "threads";
  if (io_mode == "uring") {
    if (uring_probe.available) {
      io_kind = exec::IoBackendKind::kUring;
      io_active = "uring";
    } else {
      std::printf("--io=uring requested but io_uring is unavailable (%s); "
                  "running on threads\n",
                  uring_probe.detail.c_str());
    }
  }
  const bool uring_active = io_kind == exec::IoBackendKind::kUring;
  const size_t k = 10;
  const int threads[] = {1, 2, 4, 8};

  bench::PrintHeader(
      "Real engine throughput vs query threads",
      "CRSS, k=10, " + std::to_string(n_points) + " clustered points, " +
          std::to_string(disks) + " disks (PI), " +
          std::to_string(n_queries) + " queries, page 4096; host has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " core(s)");

  const workload::Dataset data =
      workload::MakeClustered(n_points, 2, 20, 0.1, bench::kDatasetSeed);
  auto index =
      bench::BuildIndex(data, disks, bench::kResponseTimePageSize);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sqp_bench_engine.index")
          .string();
  std::filesystem::remove_all(dir);
  const common::Status saved = storage::SaveIndexToDir(*index, dir);
  SQP_CHECK(saved.ok());
  auto store = storage::FilePageStore::Open(dir);
  SQP_CHECK(store.ok());
  std::printf("index: %zu pages saved to %s\n", index->tree().NodeCount(),
              dir.c_str());

  const auto points = workload::MakeQueryPoints(
      data, n_queries, workload::QueryDistribution::kDataDistributed,
      bench::kQuerySeed);
  std::vector<exec::EngineQuery> queries;
  for (const geometry::Point& q : points) {
    queries.push_back({q, k, core::AlgorithmKind::kCrss});
  }

  if (fault_rate > 0) {
    // The acceptance smoke runs at least 1000 queries.
    std::vector<exec::EngineQuery> smoke_queries = queries;
    while (smoke_queries.size() < 1000) {
      smoke_queries.insert(smoke_queries.end(), queries.begin(),
                           queries.end());
    }
    const int rc = RunFaultSmoke(*index, store->get(), smoke_queries,
                                 fault_rate, fault_seed);
    std::filesystem::remove_all(dir);
    return rc;
  }

  if (gate_mode) {
    storage::ThrottledPageStore slow(store->get(), throttle);
    const int rc = RunPrefetchGate(*index, &slow, queries, gate_tolerance);
    std::filesystem::remove_all(dir);
    return rc;
  }

  // The warm runs finish a query in tens of microseconds; repeat the list
  // so each timed run spans hundreds of milliseconds of wall clock.
  std::vector<exec::EngineQuery> warm_queries;
  for (int rep = 0; rep < 20; ++rep) {
    warm_queries.insert(warm_queries.end(), queries.begin(), queries.end());
  }

  std::vector<RunResult> warm;
  for (int t : threads) {
    warm.push_back(RunOnce(*index, store->get(), warm_queries, t,
                           /*cache_pages=*/8192, /*warm_up=*/true,
                           /*serial_io=*/false, /*metered=*/true,
                           /*prefetch_budget=*/0,
                           /*prefetch_adaptive=*/false, io_kind));
  }
  PrintSeries("warm cache (CPU-bound; scaling bounded by core count)",
              warm, 0.0, uring_active);

  // The single-threaded baseline: same engine, same cache, but every
  // missed page is one blocking read — the single-disk-at-a-time system
  // the paper's speedup figures compare against.
  storage::ThrottledPageStore slow(store->get(), throttle);
  const RunResult serial =
      RunOnce(*index, &slow, queries, /*threads=*/1, /*cache_pages=*/64,
              /*warm_up=*/true, /*serial_io=*/true);
  std::printf(
      "\nserial baseline (1 thread, one blocking read per page): %.0f q/s, "
      "p50 %.3f ms\n",
      serial.qps, serial.p50_ms);

  // Throttled media with and without CRSS-hint prefetch. With prefetch,
  // speculation rides the per-disk queues' speculative class (demand
  // strictly first, cancellable in queue); `adaptive` lets the feedback
  // controller size the per-step budget from the measured hit rate,
  // cache pressure, and demand queue depth. The two series are compared
  // point-for-point below, so each side takes the best of kGateReps
  // alternating reps (min-time benchmarking, same rationale as the
  // metering measurement: interference only ever slows a run).
  int pf_budget = 0;
  bool pf_adaptive = false;
  if (prefetch_mode == "adaptive") {
    pf_adaptive = true;
  } else if (prefetch_mode != "off") {
    pf_budget = std::atoi(prefetch_mode.c_str());
    SQP_CHECK(pf_budget > 0);
  }
  std::vector<RunResult> throttled;
  std::vector<RunResult> prefetch_series;
  for (int t : threads) {
    RunResult off, pf;
    for (int rep = 0; rep < kGateReps; ++rep) {
      const RunResult o = RunOnce(*index, &slow, queries, t,
                                  /*cache_pages=*/64, /*warm_up=*/true,
                                  /*serial_io=*/false, /*metered=*/true,
                                  /*prefetch_budget=*/0,
                                  /*prefetch_adaptive=*/false, io_kind);
      const RunResult p = RunOnce(*index, &slow, queries, t,
                                  /*cache_pages=*/64, /*warm_up=*/true,
                                  /*serial_io=*/false, /*metered=*/true,
                                  pf_budget, pf_adaptive, io_kind);
      if (rep == 0 || o.qps > off.qps) off = o;
      if (rep == 0 || p.qps > pf.qps) pf = p;
    }
    throttled.push_back(off);
    prefetch_series.push_back(pf);
  }
  PrintSeries(
      "throttled media (I/O-bound; per-disk workers overlap; speedup vs "
      "serial baseline)",
      throttled, serial.qps, uring_active);
  PrintSeries(("throttled media + CRSS prefetch (" + prefetch_mode + ")")
                  .c_str(),
              prefetch_series, serial.qps, uring_active);
  // The regression the two-class queue exists to prevent, checked inline:
  // prefetch should never lose to the plain throttled series.
  for (size_t i = 0; i < prefetch_series.size(); ++i) {
    const double ratio = prefetch_series[i].qps / throttled[i].qps;
    std::printf("  vs no-prefetch at %d threads: %.3fx%s\n",
                prefetch_series[i].threads, ratio,
                ratio < 1.0 ? "  (prefetch losing!)" : "");
  }

  // Threads vs uring, point-for-point on the same throttled media. Best
  // of kIoCompareReps alternating reps per side — more than the other
  // sweeps because the bar ("uring never loses") is pointwise. The
  // throttle decorator hides the store's raw fds, so uring's batches run
  // on its per-disk executors; the comparison isolates the architectural
  // difference under identical per-access charged service times. The
  // threads backend parks ONE worker per disk, so a wave whose batch
  // merges into R runs on a disk serializes R charges there; the
  // completion-driven backend submits each merged run independently up to
  // its per-disk window (per-run READV SQEs on the ring, per-run executor
  // jobs here), overlapping those charges — deep per-device queue depth
  // is the point of the design, and it shows at every thread count.
  constexpr int kIoCompareReps = 7;
  std::vector<RunResult> io_threads_series, io_uring_series;
  if (uring_probe.available) {
    for (int t : threads) {
      RunResult th, ur;
      for (int rep = 0; rep < kIoCompareReps; ++rep) {
        // Alternate which side runs first so slow drift on a shared
        // host (cache state, background load) cannot systematically
        // favor one backend.
        const auto run_threads = [&] {
          return RunOnce(*index, &slow, queries, t,
                         /*cache_pages=*/64, /*warm_up=*/true);
        };
        const auto run_uring = [&] {
          return RunOnce(*index, &slow, queries, t, /*cache_pages=*/64,
                         /*warm_up=*/true, /*serial_io=*/false,
                         /*metered=*/true, /*prefetch_budget=*/0,
                         /*prefetch_adaptive=*/false,
                         exec::IoBackendKind::kUring);
        };
        RunResult a, u;
        if (rep % 2 == 0) {
          a = run_threads();
          u = run_uring();
        } else {
          u = run_uring();
          a = run_threads();
        }
        if (rep == 0 || a.qps > th.qps) th = a;
        if (rep == 0 || u.qps > ur.qps) ur = u;
      }
      io_threads_series.push_back(th);
      io_uring_series.push_back(ur);
    }
    PrintSeries("io backend: threads (throttled media)", io_threads_series,
                serial.qps);
    PrintSeries("io backend: uring (throttled media)", io_uring_series,
                serial.qps, /*uring_active=*/true);
    for (size_t i = 0; i < io_uring_series.size(); ++i) {
      const double ratio = io_uring_series[i].qps / io_threads_series[i].qps;
      std::printf("  uring vs threads at %d threads: %.3fx%s\n",
                  io_uring_series[i].threads, ratio,
                  ratio < 1.0 ? "  (uring losing!)" : "");
    }
  } else {
    std::printf("\nio backend comparison skipped: %s\n",
                uring_probe.detail.c_str());
  }

  // Hot-neighbor placement (storage::SaveIndexOptions): the same tree
  // saved with and without the placement pass, read through the same
  // throttled store. k-NN activation batches cannot show the effect by
  // design — declustering spreads each activation batch one page per
  // disk, so there is nothing for the layout to merge. The access
  // pattern the placement targets is the multi-child expansion (range
  // queries, breadth traversals, speculative sibling runs): every
  // internal node's children batch-read through the StoredIndexReader
  // that serves the engine. pages/read is delivered pages over physical
  // media accesses (merged runs; StoredIndexReader::media_reads) — the
  // figure the placement exists to raise; fewer runs means fewer
  // charged service times on slow media. A k-NN run over both images
  // guards that placement stays neutral for the paper's own workload.
  const std::string legacy_dir = dir + ".legacy";
  std::filesystem::remove_all(legacy_dir);
  auto legacy_files = storage::FilePageStore::Create(legacy_dir, disks);
  SQP_CHECK(legacy_files.ok());
  storage::SaveIndexOptions legacy_opts;
  legacy_opts.hot_neighbor_placement = false;
  SQP_CHECK(storage::SaveIndex(*index, legacy_files->get(), legacy_opts)
                .ok());
  struct PlacementRow {
    double pages_per_read = 0.0;
    double sweep_s = 0.0;  // wall time of the expansion sweep
    double qps = 0.0;      // k-NN guard (expected ~neutral)
    uint64_t media_reads = 0;
    uint64_t pages = 0;
  };
  const auto measure_placement =
      [&](const storage::PageStore* base) -> PlacementRow {
    storage::ThrottledPageStore throttled_store(base, throttle);
    PlacementRow row;
    {
      auto sweep_reader = exec::StoredIndexReader::Open(&throttled_store);
      SQP_CHECK(sweep_reader.ok());
      const auto start = std::chrono::steady_clock::now();
      for (rstar::PageId id : index->tree().LiveNodeIds()) {
        const rstar::Node& n = index->tree().node(id);
        if (n.IsLeaf()) continue;
        std::vector<rstar::PageId> children;
        children.reserve(n.entries.size());
        for (const rstar::Entry& e : n.entries) children.push_back(e.child);
        std::vector<rstar::Node> nodes;
        SQP_CHECK((*sweep_reader)->ReadNodes(children, &nodes).ok());
        row.pages += children.size();
      }
      row.sweep_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      row.media_reads = (*sweep_reader)->media_reads();
      row.pages_per_read = static_cast<double>(row.pages) /
                           static_cast<double>(row.media_reads);
    }
    exec::EngineOptions options;
    options.query_threads = 4;
    options.cache_pages = 64;
    options.io_backend = io_kind;
    auto engine = exec::ParallelQueryEngine::Create(*index, &throttled_store,
                                                    options);
    SQP_CHECK(engine.ok());
    const auto start = std::chrono::steady_clock::now();
    const auto answers = (*engine)->RunBatch(queries);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    for (const exec::QueryAnswer& a : answers) SQP_CHECK(a.status.ok());
    row.qps = static_cast<double>(answers.size()) / wall;
    return row;
  };
  const PlacementRow placed = measure_placement(store->get());
  const PlacementRow legacy = measure_placement(legacy_files->get());
  std::printf(
      "\nhot-neighbor placement (sibling-expansion sweep, throttled "
      "media):\n"
      "  placed  %6.3f pages/read (%llu pages over %llu media reads), "
      "sweep %.2fs, k-NN %.0f q/s\n"
      "  legacy  %6.3f pages/read (%llu pages over %llu media reads), "
      "sweep %.2fs, k-NN %.0f q/s\n"
      "  -> %.2fx pages per media read%s\n",
      placed.pages_per_read,
      static_cast<unsigned long long>(placed.pages),
      static_cast<unsigned long long>(placed.media_reads), placed.sweep_s,
      placed.qps, legacy.pages_per_read,
      static_cast<unsigned long long>(legacy.pages),
      static_cast<unsigned long long>(legacy.media_reads), legacy.sweep_s,
      legacy.qps, placed.pages_per_read / legacy.pages_per_read,
      placed.pages_per_read <= legacy.pages_per_read
          ? "  (placement not helping!)"
          : "");
  std::filesystem::remove_all(legacy_dir);

  // Metering overhead: the observability layer on vs fully off (no
  // registry, no trace) in the warm-cache single-thread configuration —
  // every fetch is a hit, so queries are pure CPU and each instrument
  // write lands on the critical path; this is the layer's worst case in
  // relative terms. One thread keeps the measurement stable on small
  // hosts (the 8-thread throttled runs above schedule chaotically on a
  // one-core machine). Shared-host interference only ever slows a run
  // down, so each side's best of nine alternating reps is its
  // least-disturbed sample (min-time benchmarking) and the overhead is
  // the ratio of the two bests. The acceptance bar is < 3% regression
  // (docs/OBSERVABILITY.md).
  double metered_qps = 0.0, unmetered_qps = 0.0;
  for (int rep = 0; rep < 9; ++rep) {
    for (const bool metered : {true, false}) {
      const RunResult r = RunOnce(*index, store->get(), warm_queries,
                                  /*threads=*/1, /*cache_pages=*/8192,
                                  /*warm_up=*/true, /*serial_io=*/false,
                                  metered);
      double& best = metered ? metered_qps : unmetered_qps;
      best = std::max(best, r.qps);
    }
  }
  const double overhead_pct =
      100.0 * (1.0 - metered_qps / unmetered_qps);
  std::printf(
      "\nmetering overhead (warm cache, 1 thread, best of 9): %.0f q/s "
      "metered vs %.0f q/s unmetered -> %.2f%% overhead\n",
      metered_qps, unmetered_qps, overhead_pct);

  bench::JsonWriter w;
  w.BeginObject();
  bench::StampBenchMeta(&w, io_active);
  w.Field("bench", "parallel_engine");
  w.Field("algo", "crss");
  w.Field("prefetch_mode", prefetch_mode);
  w.Field("k", static_cast<uint64_t>(k));
  w.Field("points", static_cast<uint64_t>(n_points));
  w.Field("queries", static_cast<uint64_t>(n_queries));
  w.Field("disks", disks);
  w.Field("page_size", bench::kResponseTimePageSize);
  w.Field("throttle_read_latency_s", throttle, 4);
  w.Field("host_hardware_threads",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  w.BeginObject("serial_baseline");
  w.Field("queries_per_sec", serial.qps, 5);
  w.Field("p50_latency_ms", serial.p50_ms, 5);
  w.Field("p95_latency_ms", serial.p95_ms, 5);
  w.Field("p99_latency_ms", serial.p99_ms, 5);
  w.Field("cache_hit_rate", serial.hit_rate, 4);
  w.EndObject();
  JsonSeries(&w, "warm_cache", warm);
  JsonSeries(&w, "throttled_media", throttled, serial.qps);
  JsonSeries(&w, "throttled_media_prefetch", prefetch_series, serial.qps);
  if (!io_uring_series.empty()) {
    JsonSeries(&w, "io_backend_threads", io_threads_series, serial.qps);
    JsonSeries(&w, "io_backend_uring", io_uring_series, serial.qps);
  }
  w.BeginObject("hot_neighbor_placement");
  w.Field("placed_pages_per_media_read", placed.pages_per_read, 5);
  w.Field("legacy_pages_per_media_read", legacy.pages_per_read, 5);
  w.Field("placed_media_reads", placed.media_reads);
  w.Field("legacy_media_reads", legacy.media_reads);
  w.Field("placed_sweep_seconds", placed.sweep_s, 5);
  w.Field("legacy_sweep_seconds", legacy.sweep_s, 5);
  w.Field("placed_knn_queries_per_sec", placed.qps, 5);
  w.Field("legacy_knn_queries_per_sec", legacy.qps, 5);
  w.EndObject();
  w.BeginObject("metering");
  w.Field("metered_queries_per_sec", metered_qps, 5);
  w.Field("unmetered_queries_per_sec", unmetered_qps, 5);
  w.Field("metering_overhead_pct", overhead_pct, 4);
  w.EndObject();
  w.EndObject();
  w.WriteFile(json_path);

  std::filesystem::remove_all(dir);
  return 0;
}
