// Build-strategy ablation: the paper's dynamic setting (§1) rules out
// complete reorganization, so its trees are built by one-by-one insertion.
// This bench quantifies what that choice costs relative to offline STR
// bulk loading: tree size, fill factor, and the node accesses / response
// time of CRSS over both builds.

#include <cstdio>

#include "bench/bench_util.h"
#include "rstar/tree_stats.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(50000, 2, 40, 0.05, kDatasetSeed);
  const int disks = 10;
  const size_t k = 20;

  // Incremental build (the paper's method).
  auto incremental = BuildIndex(data, disks, kResponseTimePageSize);

  // STR bulk load into an identical configuration.
  rstar::TreeConfig tree_cfg;
  tree_cfg.dim = data.dim;
  tree_cfg.page_size_bytes = kResponseTimePageSize;
  parallel::DeclusterConfig dc;
  dc.num_disks = disks;
  dc.seed = kDatasetSeed;
  auto bulk = std::make_unique<parallel::ParallelRStarTree>(tree_cfg, dc);
  std::vector<rstar::ObjectId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  SQP_CHECK_OK(bulk->tree().BulkLoad(data.points, ids));

  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  PrintHeader("Ablation: incremental R* build vs STR bulk load",
              "Set: clustered 50k 2-d, Disks: 10, NNs: 20, lambda=5 q/s, "
              "algorithm: CRSS");
  PrintRow({"build", "pages", "leaf-fill", "nodes/query", "resp(s)"}, 13);
  struct Build {
    const char* name;
    parallel::ParallelRStarTree* index;
  };
  for (const Build& b : {Build{"incremental", incremental.get()},
                         Build{"str_bulk", bulk.get()}}) {
    const rstar::TreeStats stats = rstar::ComputeTreeStats(b.index->tree());
    const double nodes = MeanNodeAccesses(
        b.index->tree(), core::AlgorithmKind::kCrss, queries, k, disks);
    const double resp = MeanResponseTime(
        *b.index, core::AlgorithmKind::kCrss, queries, k, /*lambda=*/5.0);
    PrintRow({b.name, std::to_string(stats.total_nodes),
              Fmt(stats.levels[0].avg_fill, 2), Fmt(nodes, 1), Fmt(resp)},
             13);
  }
  std::printf(
      "\n(STR packs fuller pages => fewer nodes; the paper's dynamic\n"
      " environment cannot afford the offline reorganization.)\n");
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_bulkload — build strategy trade-off\n");
  sqp::bench::Run();
  return 0;
}
