// Figure 12: mean response time normalized to WOPTSS vs. number of nearest
// neighbors (1..100), Uniform 80,000 points, 5 dimensions, 10 disks.
// Left panel: lambda = 1 query/s; right panel: lambda = 20 queries/s.
// Series: BBSS, CRSS, WOPTSS.
//
// Paper shape: CRSS outperforms BBSS by factors (3-4x faster), more
// pronounced under the heavier lambda = 20 load.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void RunPanel(const parallel::ParallelRStarTree& index,
              const std::vector<geometry::Point>& queries, double lambda) {
  PrintHeader("Figure 12: response time normalized to WOPTSS vs. k",
              "Set: uniform, Population: 80000, Disks: 10, Dimensions: 5, "
              "lambda=" + Fmt(lambda, 0) + " q/s, queries: 100");
  PrintRow({"k", "BBSS/OPT", "CRSS/OPT", "WOPTSS(s)"});
  for (size_t k : {1u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    const double opt = MeanResponseTime(index, core::AlgorithmKind::kWoptss,
                                        queries, k, lambda);
    const double bbss = MeanResponseTime(index, core::AlgorithmKind::kBbss,
                                         queries, k, lambda);
    const double crss = MeanResponseTime(index, core::AlgorithmKind::kCrss,
                                         queries, k, lambda);
    PrintRow({std::to_string(k), Fmt(bbss / opt), Fmt(crss / opt),
              Fmt(opt)});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf("bench_fig12_resptime_vs_k — response time vs query size\n");
  const workload::Dataset data =
      workload::MakeUniform(80000, 5, bench::kDatasetSeed);
  auto index = bench::BuildIndex(data, /*disks=*/10, bench::kResponseTimePageSize);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed,
      bench::kQuerySeed);
  bench::RunPanel(*index, queries, /*lambda=*/1.0);
  bench::RunPanel(*index, queries, /*lambda=*/20.0);
  return 0;
}
