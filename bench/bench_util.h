// Shared plumbing for the reproduction benches: index construction, the
// two experiment drivers (node-access counting and simulated response
// time), and table printing. Every bench binary prints the series of one
// figure/table of the paper; see DESIGN.md §4 for the experiment index.

#ifndef SQP_BENCH_BENCH_UTIL_H_
#define SQP_BENCH_BENCH_UTIL_H_

#include <sys/utsname.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithms.h"
#include "core/sequential_executor.h"
#include "exec/uring_backend.h"
#include "parallel/parallel_tree.h"
#include "sim/query_engine.h"
#include "workload/dataset.h"
#include "workload/index_builder.h"
#include "workload/workload.h"

namespace sqp::bench {

inline constexpr uint64_t kDatasetSeed = 1998;   // the paper's year
inline constexpr uint64_t kQuerySeed = 225;      // first page of the paper
inline constexpr uint64_t kArrivalSeed = 226;

// The paper never states its page size, and its observable outputs imply
// different fan-outs per experiment family: the absolute visited-node
// counts of Figures 8-9 (up to ~55 nodes at k=700, d=2, 62k points) imply
// a fan-out of ~40, i.e. 1 KB blocks, while the absolute response times of
// Tables 3-4 (WOPTSS 0.15-0.48 s at d=5, lambda=5) are only reachable with
// a fan-out of ~80 at d=5, i.e. 4 KB blocks. Each bench therefore states
// the page size it calibrated to; see EXPERIMENTS.md.
inline constexpr int kEffectivenessPageSize = 1024;   // Figures 8, 9
inline constexpr int kResponseTimePageSize = 4096;    // Figs 10-12, Tabs 3-5

// Builds a PI-declustered page-sized R*-tree over `data`.
inline std::unique_ptr<parallel::ParallelRStarTree> BuildIndex(
    const workload::Dataset& data, int disks, int page_size,
    parallel::DeclusterPolicy policy =
        parallel::DeclusterPolicy::kProximityIndex) {
  rstar::TreeConfig tree_cfg;
  tree_cfg.dim = data.dim;
  tree_cfg.page_size_bytes = page_size;
  parallel::DeclusterConfig dc;
  dc.num_disks = disks;
  dc.policy = policy;
  dc.seed = kDatasetSeed;
  return workload::BuildParallelIndex(data, tree_cfg, dc);
}

// Mean pages fetched per query (the paper's "number of visited nodes").
inline double MeanNodeAccesses(const rstar::RStarTree& tree,
                               core::AlgorithmKind kind,
                               const std::vector<geometry::Point>& queries,
                               size_t k, int disks) {
  double total = 0.0;
  for (const geometry::Point& q : queries) {
    auto algo = core::MakeAlgorithm(kind, tree, q, k, disks);
    total += static_cast<double>(
        core::RunToCompletion(tree, algo.get()).pages_fetched);
  }
  return total / static_cast<double>(queries.size());
}

// Simulator parameters matched to the striping unit: the media transfer
// and bus transfer of one page scale with its size (~2 MB/s media,
// ~8 MB/s SCSI bus of the drive's era).
inline sim::SimConfig MakeSimConfig(int page_size) {
  sim::SimConfig cfg;
  cfg.disk.page_transfer_time = page_size / 2.0e6;
  cfg.bus_transfer_time = page_size / 8.0e6;
  return cfg;
}

// Mean response time (seconds) of `n` queries arriving as a Poisson
// process with rate lambda, all running `kind` over `index`.
inline double MeanResponseTime(const parallel::ParallelRStarTree& index,
                               core::AlgorithmKind kind,
                               const std::vector<geometry::Point>& queries,
                               size_t k, double lambda) {
  const auto arrivals =
      workload::PoissonArrivalTimes(queries.size(), lambda, kArrivalSeed);
  std::vector<sim::QueryJob> jobs;
  jobs.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    jobs.push_back({arrivals[i], queries[i], k});
  }
  const sim::SimConfig cfg =
      MakeSimConfig(index.tree().config().page_size_bytes);
  const sim::SimulationResult result = sim::RunSimulation(
      index, jobs,
      [kind, &index](const geometry::Point& q, size_t kk) {
        return core::MakeAlgorithm(kind, index.tree(), q, kk,
                                   index.num_disks());
      },
      cfg);
  return result.MeanResponseTime();
}

inline void PrintHeader(const std::string& title,
                        const std::string& setting) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), setting.c_str());
}

// Value of a `--name=value` argument, or `def` when absent. Benches use
// this for the few flags they take (notably --json=<path>).
inline std::string ArgValue(int argc, char** argv, const std::string& name,
                            const std::string& def = "") {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

// Minimal JSON emitter for machine-readable bench output (--json=<path>).
// Scope-based: Begin/End calls must nest properly; keys are passed to
// Field/Begin* inside objects and omitted inside arrays.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Field("bench", "parallel_engine");
//   w.BeginArray("series");
//   w.BeginObject();  w.Field("threads", 8);  w.EndObject();
//   w.EndArray();
//   w.EndObject();
//   w.WriteFile(path);
class JsonWriter {
 public:
  void BeginObject(const std::string& key = "") { Pre(key); out_ += '{'; first_ = true; }
  void EndObject() { out_ += '}'; first_ = false; }
  void BeginArray(const std::string& key = "") { Pre(key); out_ += '['; first_ = true; }
  void EndArray() { out_ += ']'; first_ = false; }

  void Field(const std::string& key, const std::string& v) {
    Pre(key);
    out_ += Quote(v);
  }
  void Field(const std::string& key, const char* v) {
    Field(key, std::string(v));
  }
  void Field(const std::string& key, double v, int precision = 6) {
    Pre(key);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    out_ += buf;
  }
  void Field(const std::string& key, uint64_t v) {
    Pre(key);
    out_ += std::to_string(v);
  }
  void Field(const std::string& key, int v) {
    Pre(key);
    out_ += std::to_string(v);
  }
  void Field(const std::string& key, bool v) {
    Pre(key);
    out_ += v ? "true" : "false";
  }

  const std::string& str() const { return out_; }

  // Writes the document (plus trailing newline) to `path`. Reports the
  // failure to stderr rather than aborting the bench.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        q += '\\';
        q += c;
      } else if (c == '\n') {
        q += "\\n";
      } else {
        q += c;
      }
    }
    q += '"';
    return q;
  }

  void Pre(const std::string& key) {
    if (!first_) out_ += ',';
    first_ = false;
    if (!key.empty()) out_ += Quote(key) + ":";
  }

  std::string out_;
  bool first_ = true;
};

// Version of the BENCH_*.json document layout. Bump when a bench changes
// the shape or meaning of its JSON (new/renamed series, changed row
// fields), so trajectory tooling can tell format changes from perf
// changes. v1: implicit, unstamped (PRs 2-6). v2: stamped meta fields +
// prefetch hit/wasted columns and adaptive prefetch series. v3: kernel +
// io_uring probe meta fields, io-backend series in bench_parallel_engine,
// hot-neighbor placement section.
inline constexpr int kBenchSchemaVersion = 3;

#ifndef SQP_GIT_DESCRIBE
#define SQP_GIT_DESCRIBE "unknown"  // set by bench/CMakeLists.txt
#endif

// Kernel release of the machine the bench ran on — io_uring availability
// and behavior are kernel properties, so the number rides with the data.
inline std::string KernelRelease() {
  struct utsname u;
  if (uname(&u) != 0) return "unknown";
  return std::string(u.sysname) + " " + u.release;
}

// Stamps the shared meta fields into `w`'s current (top-level) object.
// Call right after the opening BeginObject of every BENCH_*.json.
// `io_backend` is the backend the bench's engine runs actually used
// ("threads", "uring", or "" for benches that never touch an engine).
inline void StampBenchMeta(JsonWriter* w, const std::string& io_backend = "") {
  w->Field("schema_version", kBenchSchemaVersion);
  w->Field("git_describe", SQP_GIT_DESCRIBE);
  w->Field("kernel", KernelRelease());
  const exec::UringProbe probe = exec::ProbeIoUring();
  w->Field("io_uring_available", probe.available);
  w->Field("io_uring_detail", probe.detail);
  if (!io_backend.empty()) w->Field("io_backend", io_backend);
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 12) {
  for (const std::string& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sqp::bench

#endif  // SQP_BENCH_BENCH_UTIL_H_
