// Figures 14 and 15: the four data sets of Appendix I. Since this harness
// is textual, the report prints the summary statistics that characterize
// each set's spatial distribution (population, per-axis moments, grid-cell
// occupancy skew) instead of a scatter plot, plus a coarse ASCII density
// sketch for the 2-d sets.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"

namespace sqp::bench {
namespace {

void Report(const workload::Dataset& data) {
  std::printf("\n--- %s: %zu points, %d-d ---\n", data.name.c_str(),
              data.size(), data.dim);
  for (int axis = 0; axis < std::min(data.dim, 3); ++axis) {
    common::RunningStats st;
    for (const auto& p : data.points) st.Add(p[axis]);
    std::printf("  axis %d: mean=%.3f stddev=%.3f min=%.3f max=%.3f\n", axis,
                st.mean(), st.stddev(), st.min(), st.max());
  }
  if (data.dim != 2) return;

  // 20x20 occupancy grid: skew metric + ASCII sketch (Figures 14/15).
  constexpr int kGrid = 20;
  std::vector<int> cells(kGrid * kGrid, 0);
  for (const auto& p : data.points) {
    const int cx = std::min(kGrid - 1, static_cast<int>(p[0] * kGrid));
    const int cy = std::min(kGrid - 1, static_cast<int>(p[1] * kGrid));
    ++cells[static_cast<size_t>(cy * kGrid + cx)];
  }
  const int max_cell = *std::max_element(cells.begin(), cells.end());
  const double avg_cell =
      static_cast<double>(data.size()) / (kGrid * kGrid);
  std::printf("  occupancy skew (max cell / avg cell): %.2f\n",
              max_cell / avg_cell);
  const char* shades = " .:-=+*#%@";
  for (int y = kGrid - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < kGrid; ++x) {
      const int c = cells[static_cast<size_t>(y * kGrid + x)];
      const int level = static_cast<int>(
          9.0 * c / std::max(1, max_cell));
      std::printf("%c", shades[level]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf(
      "bench_datasets_report — Appendix I data sets (Figures 14, 15)\n");
  bench::Report(workload::MakeCaliforniaLike(bench::kDatasetSeed));
  bench::Report(workload::MakeLongBeachLike(bench::kDatasetSeed));
  bench::Report(workload::MakeGaussian(10000, 2, bench::kDatasetSeed));
  bench::Report(workload::MakeUniform(10000, 2, bench::kDatasetSeed));
  return 0;
}
