// Figure 9: number of visited nodes normalized to WOPTSS vs. query size,
// synthetic Gaussian (60,030 points) and Uniform (60,000 points) data in
// 10-d space, 10 disks. Series: BBSS, CRSS, WOPTSS (== 1.0).
//
// Paper shape: normalized ratios close to 1 (1.0-1.14); BBSS's ratio is
// highest at small k and decays toward 1, CRSS stays below BBSS; in high
// dimensions MBR overlap inflates everyone toward the optimal's count.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void RunDataset(const workload::Dataset& data) {
  const int kDisks = 10;
  auto index = BuildIndex(data, kDisks, kEffectivenessPageSize);
  const auto& tree = index->tree();

  const auto queries = workload::MakeQueryPoints(
      data, 30, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  PrintHeader("Figure 9: visited nodes normalized to WOPTSS vs. k",
              "Set: " + data.name + ", Population: " +
                  std::to_string(data.size()) +
                  ", Disks: 10, Dimensions: 10, queries: 30");
  PrintRow({"k", "BBSS/OPT", "CRSS/OPT", "WOPTSS"});
  for (size_t k : {1u, 50u, 100u, 200u, 300u, 400u, 500u, 600u, 700u}) {
    const double opt = MeanNodeAccesses(tree, core::AlgorithmKind::kWoptss,
                                        queries, k, kDisks);
    const double bbss = MeanNodeAccesses(tree, core::AlgorithmKind::kBbss,
                                         queries, k, kDisks);
    const double crss = MeanNodeAccesses(tree, core::AlgorithmKind::kCrss,
                                         queries, k, kDisks);
    PrintRow({std::to_string(k), Fmt(bbss / opt), Fmt(crss / opt),
              Fmt(1.0)});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf(
      "bench_fig09_highdim_nodes — effectiveness in 10-d feature space\n");
  bench::RunDataset(workload::MakeGaussian(60030, 10, bench::kDatasetSeed));
  bench::RunDataset(workload::MakeUniform(60000, 10, bench::kDatasetSeed));
  return 0;
}
