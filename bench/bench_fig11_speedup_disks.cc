// Figure 11: mean response time normalized to WOPTSS vs. number of disks
// (5..30), Gaussian 50,000 points, 5 dimensions, lambda = 5 queries/s.
// Left panel: k = 10; right panel: k = 100. Series: BBSS, CRSS, WOPTSS.
//
// Paper shape: CRSS's speed-up with added disks is better than BBSS's;
// CRSS runs 2-4x faster than BBSS across the sweep and stays within ~2x of
// WOPTSS.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void RunPanel(const workload::Dataset& data, size_t k) {
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const double lambda = 5.0;

  PrintHeader("Figure 11: response time normalized to WOPTSS vs. disks",
              "Set: gaussian, Population: " + std::to_string(data.size()) +
                  ", Dimensions: 5, NNs: " + std::to_string(k) +
                  ", lambda=5 q/s, queries: 100");
  PrintRow({"disks", "BBSS/OPT", "CRSS/OPT", "WOPTSS(s)"});
  for (int disks : {5, 10, 15, 20, 25, 30}) {
    auto index = BuildIndex(data, disks, kResponseTimePageSize);
    const double opt = MeanResponseTime(*index, core::AlgorithmKind::kWoptss,
                                        queries, k, lambda);
    const double bbss = MeanResponseTime(*index, core::AlgorithmKind::kBbss,
                                         queries, k, lambda);
    const double crss = MeanResponseTime(*index, core::AlgorithmKind::kCrss,
                                         queries, k, lambda);
    PrintRow({std::to_string(disks), Fmt(bbss / opt), Fmt(crss / opt),
              Fmt(opt)});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf("bench_fig11_speedup_disks — speed-up with array width\n");
  const workload::Dataset data =
      workload::MakeGaussian(50000, 5, bench::kDatasetSeed);
  bench::RunPanel(data, /*k=*/10);
  bench::RunPanel(data, /*k=*/100);
  return 0;
}
