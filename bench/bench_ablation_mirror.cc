// Shadowed disks (RAID-1) — the paper's §5 future-work item, implemented:
// every page is replicated on a second disk and reads are served by the
// less-loaded replica. Response time vs. load for plain RAID-0 and
// mirrored arrays, per algorithm.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(50000, 2, 40, 0.05, kDatasetSeed);
  const int disks = 10;
  const size_t k = 50;
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  rstar::TreeConfig tree_cfg;
  tree_cfg.dim = data.dim;
  tree_cfg.page_size_bytes = kResponseTimePageSize;

  auto build = [&](bool mirrored) {
    parallel::DeclusterConfig dc;
    dc.num_disks = disks;
    dc.seed = kDatasetSeed;
    dc.mirrored = mirrored;
    return workload::BuildParallelIndex(data, tree_cfg, dc);
  };
  auto raid0 = build(false);
  auto raid1 = build(true);

  PrintHeader("Extension: shadowed disks (RAID-1 reads)",
              "Set: clustered 50k 2-d, Disks: 10, NNs: 50; response time "
              "(s) vs lambda; reads go to the less-loaded replica");
  PrintRow({"lambda", "BBSS-r0", "BBSS-r1", "CRSS-r0", "CRSS-r1"}, 12);
  for (double lambda : {2.0, 6.0, 10.0, 14.0, 18.0}) {
    PrintRow({Fmt(lambda, 0),
              Fmt(MeanResponseTime(*raid0, core::AlgorithmKind::kBbss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*raid1, core::AlgorithmKind::kBbss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*raid0, core::AlgorithmKind::kCrss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*raid1, core::AlgorithmKind::kCrss,
                                   queries, k, lambda))},
             12);
  }
  std::printf(
      "\n(Mirroring trades capacity for read balance: under load the\n"
      " shorter-queue replica absorbs hot-disk contention.)\n");
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_mirror — RAID-0 vs shadowed (RAID-1) reads\n");
  sqp::bench::Run();
  return 0;
}
