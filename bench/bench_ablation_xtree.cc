// Access-method extension (§5 future work): CRSS over a plain R*-tree vs
// an X-tree-style variant with directory supernodes, in high dimensions
// where MBR overlap cripples the R*-tree directory. Reports node/page
// accesses and simulated response time per dimensionality.

#include <cstdio>

#include "bench/bench_util.h"
#include "rstar/tree_stats.h"

namespace sqp::bench {
namespace {

void Run() {
  PrintHeader("Extension: R*-tree vs X-tree supernodes under CRSS",
              "Gaussian 20k points, Disks: 10, NNs: 10, lambda=0.2 q/s, "
              "1 KB pages; supernode threshold 0.2, cap 8 pages");
  PrintRow({"dim", "tree", "nodes", "supers", "pages/q", "resp(s)"}, 11);

  for (int dim : {5, 8, 10}) {
    const workload::Dataset data =
        workload::MakeGaussian(20000, dim, kDatasetSeed);
    const auto queries = workload::MakeQueryPoints(
        data, 60, workload::QueryDistribution::kDataDistributed, kQuerySeed);

    for (bool xtree : {false, true}) {
      rstar::TreeConfig tree_cfg;
      tree_cfg.dim = dim;
      tree_cfg.page_size_bytes = kEffectivenessPageSize;
      tree_cfg.allow_supernodes = xtree;
      parallel::DeclusterConfig dc;
      dc.num_disks = 10;
      dc.seed = kDatasetSeed;
      auto index = workload::BuildParallelIndex(data, tree_cfg, dc);

      size_t supernodes = 0;
      for (rstar::PageId id : index->tree().LiveNodeIds()) {
        if (rstar::PageSpan(tree_cfg, index->tree().node(id)) > 1) {
          ++supernodes;
        }
      }
      const double pages = MeanNodeAccesses(
          index->tree(), core::AlgorithmKind::kCrss, queries, 10, 10);
      const double resp = MeanResponseTime(
          *index, core::AlgorithmKind::kCrss, queries, 10, /*lambda=*/0.2);
      PrintRow({std::to_string(dim), xtree ? "xtree" : "rstar",
                std::to_string(index->tree().NodeCount()),
                std::to_string(supernodes), Fmt(pages, 1), Fmt(resp)},
               11);
    }
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_xtree — supernodes in high dimensions\n");
  sqp::bench::Run();
  return 0;
}
