// Figure 8: number of visited nodes vs. query size (k = 1..700) on the two
// real-life 2-d data sets (California Places, Long Beach), 10 disks.
// Series: BBSS, FPSS, CRSS, WOPTSS.
//
// Paper shape: BBSS fetches fewest nodes for small k but deteriorates as k
// grows; CRSS tracks WOPTSS closely across the whole range; FPSS fetches
// the most.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void RunDataset(const workload::Dataset& data) {
  const int kDisks = 10;
  auto index = BuildIndex(data, kDisks, kEffectivenessPageSize);
  const auto& tree = index->tree();

  const auto queries = workload::MakeQueryPoints(
      data, 50, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  PrintHeader("Figure 8: visited nodes vs. k",
              "Set: " + data.name + ", Population: " +
                  std::to_string(data.size()) +
                  ", Disks: 10, Dimensions: 2, queries: 50");
  PrintRow({"k", "BBSS", "FPSS", "CRSS", "WOPTSS"});
  for (size_t k : {1u, 10u, 50u, 100u, 200u, 300u, 400u, 500u, 600u, 700u}) {
    PrintRow({std::to_string(k),
              Fmt(MeanNodeAccesses(tree, core::AlgorithmKind::kBbss, queries,
                                   k, kDisks), 1),
              Fmt(MeanNodeAccesses(tree, core::AlgorithmKind::kFpss, queries,
                                   k, kDisks), 1),
              Fmt(MeanNodeAccesses(tree, core::AlgorithmKind::kCrss, queries,
                                   k, kDisks), 1),
              Fmt(MeanNodeAccesses(tree, core::AlgorithmKind::kWoptss,
                                   queries, k, kDisks), 1)});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf("bench_fig08_nodes_vs_k — effectiveness on real-life 2-d sets\n");
  bench::RunDataset(workload::MakeCaliforniaLike(bench::kDatasetSeed));
  bench::RunDataset(workload::MakeLongBeachLike(bench::kDatasetSeed));
  return 0;
}
