// Access-method extension (§5 future work): the CRSS idea transplanted
// onto the SS-tree. Compares page accesses of exact best-first search and
// the count-guided batched search on both access methods across
// dimensionalities — bounding spheres have smaller volume than MBRs in
// high dimensions (the SS-tree's selling point) but lose the tight
// MinMaxDist activation test.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/exact_knn.h"
#include "core/sequential_executor.h"
#include "sstree/ss_search.h"
#include "sstree/sstree.h"

namespace sqp::bench {
namespace {

void Run() {
  PrintHeader("Extension: CRSS over R*-tree vs SS-tree vs SR-tree",
              "Gaussian 15k points, NNs: 10, u = 10, 1 KB pages; mean "
              "pages per query over 50 queries");
  PrintRow({"dim", "R*-opt", "R*-CRSS", "SS-opt", "SS-CRSS", "SR-opt",
            "SR-CRSS"},
           10);

  for (int dim : {2, 5, 8, 12}) {
    const workload::Dataset data =
        workload::MakeGaussian(15000, dim, kDatasetSeed);
    const auto queries = workload::MakeQueryPoints(
        data, 50, workload::QueryDistribution::kDataDistributed, kQuerySeed);
    const size_t k = 10;

    // R*-tree.
    rstar::TreeConfig r_cfg;
    r_cfg.dim = dim;
    r_cfg.page_size_bytes = kEffectivenessPageSize;
    rstar::RStarTree rtree(r_cfg);
    workload::InsertAll(data, &rtree);

    // SS-tree and SR-tree with the same page size.
    sstree::SsTreeConfig s_cfg;
    s_cfg.dim = dim;
    s_cfg.page_size_bytes = kEffectivenessPageSize;
    sstree::SsTree stree(s_cfg);
    sstree::SsTreeConfig sr_cfg = s_cfg;
    sr_cfg.store_rects = true;
    sstree::SsTree srtree(sr_cfg);
    for (size_t i = 0; i < data.points.size(); ++i) {
      stree.Insert(data.points[i], i);
      srtree.Insert(data.points[i], i);
    }

    double r_opt = 0.0, r_crss = 0.0, s_opt = 0.0, s_crss = 0.0,
           sr_opt = 0.0, sr_crss = 0.0;
    for (const auto& q : queries) {
      r_opt += static_cast<double>(core::ExactKnn(rtree, q, k).pages_accessed);
      auto algo = core::MakeAlgorithm(core::AlgorithmKind::kCrss, rtree, q,
                                      k, 10);
      r_crss += static_cast<double>(
          core::RunToCompletion(rtree, algo.get()).pages_fetched);
      s_opt += static_cast<double>(
          sstree::SsExactKnn(stree, q, k).stats.pages_fetched);
      s_crss += static_cast<double>(
          sstree::SsCrss(stree, q, k, {10}).stats.pages_fetched);
      sr_opt += static_cast<double>(
          sstree::SsExactKnn(srtree, q, k).stats.pages_fetched);
      sr_crss += static_cast<double>(
          sstree::SsCrss(srtree, q, k, {10}).stats.pages_fetched);
    }
    const double n = static_cast<double>(queries.size());
    PrintRow({std::to_string(dim), Fmt(r_opt / n, 1), Fmt(r_crss / n, 1),
              Fmt(s_opt / n, 1), Fmt(s_crss / n, 1), Fmt(sr_opt / n, 1),
              Fmt(sr_crss / n, 1)},
             10);
  }
  std::printf(
      "\n(The CRSS machinery transfers: Lemma 1 only needs subtree counts\n"
      " and an upper-bound distance, both available on sphere entries.)\n");
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_sstree — CRSS across access methods\n");
  sqp::bench::Run();
  return 0;
}
