// Table 3: scalability with respect to population growth — response time
// (seconds) as the database and the array grow together:
// (10k, 5 disks), (20k, 10), (40k, 20), (80k, 40).
// Gaussian data, 5 dimensions, k = 20, lambda = 5 queries/s.
//
// Paper numbers:   population  disks  BBSS  CRSS  WOPTSS
//                      10,000      5  0.76  0.47    0.23
//                      20,000     10  0.74  0.28    0.15
//                      40,000     20  1.07  0.29    0.15
//                      80,000     40  1.59  0.33    0.16
// Shape: CRSS and WOPTSS scale flat (ideal scale-up); BBSS degrades
// because it cannot use the added disks within a query.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  PrintHeader("Table 3: scale-up with population",
              "Set: gaussian, Dimensions: 5, NNs: 20, lambda=5 q/s, "
              "queries: 100");
  PrintRow({"population", "disks", "BBSS", "CRSS", "WOPTSS"});
  const size_t k = 20;
  const double lambda = 5.0;
  struct Config {
    size_t population;
    int disks;
  };
  for (const Config& c : {Config{10000, 5}, Config{20000, 10},
                          Config{40000, 20}, Config{80000, 40}}) {
    const workload::Dataset data =
        workload::MakeGaussian(c.population, 5, kDatasetSeed);
    auto index = BuildIndex(data, c.disks, kResponseTimePageSize);
    const auto queries = workload::MakeQueryPoints(
        data, 100, workload::QueryDistribution::kDataDistributed,
        kQuerySeed);
    PrintRow({std::to_string(c.population), std::to_string(c.disks),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kBbss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kCrss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kWoptss,
                                   queries, k, lambda))});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_tab3_scaleup_population — scale-up with data growth\n");
  sqp::bench::Run();
  return 0;
}
