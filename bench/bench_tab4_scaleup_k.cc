// Table 4: scalability with respect to query size growth — response time
// (seconds) as k and the array grow together:
// (k=10, 5 disks), (20, 10), (40, 20), (80, 40).
// Gaussian data, 5 dimensions, population 80,000, lambda = 5 queries/s.
//
// Paper numbers:   k  disks  BBSS  CRSS  WOPTSS
//                 10      5  2.48  1.30    0.48
//                 20     10  2.14  0.32    0.19
//                 40     20  2.37  0.55    0.28
//                 80     40  2.95  0.40    0.21
// Shape: CRSS stays flat (the extra disks absorb the extra work); BBSS
// stays expensive throughout and worsens slightly. CRSS is on average ~4x
// faster than BBSS.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeGaussian(80000, 5, kDatasetSeed);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const double lambda = 5.0;

  PrintHeader("Table 4: scale-up with query size",
              "Set: gaussian, Dimensions: 5, Population: 80000, "
              "lambda=5 q/s, queries: 100");
  PrintRow({"k", "disks", "BBSS", "CRSS", "WOPTSS"});
  struct Config {
    size_t k;
    int disks;
  };
  for (const Config& c :
       {Config{10, 5}, Config{20, 10}, Config{40, 20}, Config{80, 40}}) {
    auto index = BuildIndex(data, c.disks, kResponseTimePageSize);
    PrintRow({std::to_string(c.k), std::to_string(c.disks),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kBbss,
                                   queries, c.k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kCrss,
                                   queries, c.k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kWoptss,
                                   queries, c.k, lambda))});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_tab4_scaleup_k — scale-up with query size growth\n");
  sqp::bench::Run();
  return 0;
}
