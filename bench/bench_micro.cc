// Google-benchmark microbenchmarks of the hot kernels: the three distance
// metrics, Lemma 1, R*-tree insertion/split machinery, the exact k-NN
// search used as the WOPTSS oracle, and the concurrency primitives of the
// real execution engine (sharded page cache, batched store reads).

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/exact_knn.h"
#include "core/flat_node.h"
#include "core/lemma1.h"
#include "exec/coalescer.h"
#include "exec/page_cache.h"
#include "geometry/kernels.h"
#include "geometry/metrics.h"
#include "parallel/declustering.h"
#include "rstar/rstar_tree.h"
#include "storage/page_store.h"
#include "workload/dataset.h"
#include "workload/index_builder.h"

namespace sqp {
namespace {

geometry::Rect RandomRect(int dim, common::Rng& rng) {
  geometry::Point lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    lo[i] = static_cast<geometry::Coord>(std::min(a, b));
    hi[i] = static_cast<geometry::Coord>(std::max(a, b));
  }
  return geometry::Rect(lo, hi);
}

geometry::Point RandomPoint(int dim, common::Rng& rng) {
  geometry::Point p(dim);
  for (int i = 0; i < dim; ++i) {
    p[i] = static_cast<geometry::Coord>(rng.Uniform());
  }
  return p;
}

void BM_MinDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(1);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MinDistSq(q, r));
  }
}
BENCHMARK(BM_MinDist)->Arg(2)->Arg(5)->Arg(10);

void BM_MinMaxDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(2);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MinMaxDistSq(q, r));
  }
}
BENCHMARK(BM_MinMaxDist)->Arg(2)->Arg(5)->Arg(10);

void BM_MaxDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(3);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MaxDistSq(q, r));
  }
}
BENCHMARK(BM_MaxDist)->Arg(2)->Arg(5)->Arg(10);

void BM_Proximity(benchmark::State& state) {
  common::Rng rng(4);
  const geometry::Rect a = RandomRect(2, rng);
  const geometry::Rect b = RandomRect(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::Proximity(a, b, 0.1));
  }
}
BENCHMARK(BM_Proximity);

void BM_Lemma1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(5);
  std::vector<rstar::Entry> pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back(rstar::Entry::ForChild(
        RandomRect(2, rng), static_cast<rstar::PageId>(i),
        static_cast<uint32_t>(1 + rng.UniformInt(0, 40))));
  }
  const geometry::Point q = RandomPoint(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeLemma1(q, pool, 20));
  }
}
BENCHMARK(BM_Lemma1)->Arg(40)->Arg(160);

// --- SoA batch kernels ----------------------------------------------------

// A random internal node of `n` entries in flat layout.
core::FlatNode RandomFlatNode(int dim, int n, common::Rng& rng) {
  rstar::Node node;
  node.id = 1;
  node.level = 1;
  for (int i = 0; i < n; ++i) {
    node.entries.push_back(rstar::Entry::ForChild(
        RandomRect(dim, rng), static_cast<rstar::PageId>(i + 2),
        static_cast<uint32_t>(1 + rng.UniformInt(0, 40))));
  }
  return core::FlatNode::FromNode(node, dim);
}

// Whole-node MinDist in one kernel pass vs the per-entry Rect metric it
// replaced. range(0) = dim, range(1) = entries, range(2) = 1 forces the
// scalar fallback (0 = the vectorizable dims-outer path).
void BM_KernelMinDistBatch(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  geometry::SetForceScalarKernels(state.range(2) != 0);
  common::Rng rng(12);
  const core::FlatNode node = RandomFlatNode(dim, n, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  std::vector<double> out(static_cast<size_t>(n));
  for (auto _ : state) {
    geometry::MinDistBatch(q, node.lo_planes(), node.hi_planes(),
                           node.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  geometry::SetForceScalarKernels(false);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelMinDistBatch)
    ->Args({2, 40, 0})
    ->Args({2, 40, 1})
    ->Args({5, 40, 0})
    ->Args({5, 40, 1})
    ->Args({10, 160, 0})
    ->Args({10, 160, 1});

void BM_KernelMinMaxDistBatch(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  geometry::SetForceScalarKernels(state.range(2) != 0);
  common::Rng rng(13);
  const core::FlatNode node = RandomFlatNode(dim, n, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  std::vector<double> out(static_cast<size_t>(n));
  std::vector<double> scratch(static_cast<size_t>(n));
  for (auto _ : state) {
    geometry::MinMaxDistBatch(q, node.lo_planes(), node.hi_planes(),
                              node.size(), out.data(), scratch.data());
    benchmark::DoNotOptimize(out.data());
  }
  geometry::SetForceScalarKernels(false);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KernelMinMaxDistBatch)
    ->Args({2, 40, 0})
    ->Args({2, 40, 1})
    ->Args({10, 160, 0})
    ->Args({10, 160, 1});

// The same per-entry loop the algorithms ran before the SoA refactor:
// Rect-based MinDistSq over a vector of entries (pointer-chasing layout).
void BM_LegacyMinDistLoop(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  common::Rng rng(12);
  std::vector<rstar::Entry> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back(rstar::Entry::ForChild(
        RandomRect(dim, rng), static_cast<rstar::PageId>(i + 2), 1));
  }
  const geometry::Point q = RandomPoint(dim, rng);
  std::vector<double> out(static_cast<size_t>(n));
  for (auto _ : state) {
    for (size_t i = 0; i < entries.size(); ++i) {
      out[i] = geometry::MinDistSq(q, entries[i].mbr);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LegacyMinDistLoop)
    ->Args({2, 40})
    ->Args({5, 40})
    ->Args({10, 160});

// Node -> FlatNode conversion: the once-per-decode cost the kernels
// amortize over every visit of a cached page.
void BM_FlatNodeFromNode(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  common::Rng rng(14);
  rstar::Node node;
  node.id = 1;
  node.level = 1;
  for (int i = 0; i < n; ++i) {
    node.entries.push_back(rstar::Entry::ForChild(
        RandomRect(dim, rng), static_cast<rstar::PageId>(i + 2), 1));
  }
  for (auto _ : state) {
    core::FlatNode f = core::FlatNode::FromNode(node, dim);
    benchmark::DoNotOptimize(f.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FlatNodeFromNode)->Args({2, 40})->Args({10, 160});

void BM_TreeInsert(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const workload::Dataset data = workload::MakeUniform(20000, dim, 6);
  for (auto _ : state) {
    rstar::TreeConfig cfg;
    cfg.dim = dim;
    cfg.page_size_bytes = 1024;
    rstar::RStarTree tree(cfg);
    workload::InsertAll(data, &tree);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_TreeInsert)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ExactKnn(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const workload::Dataset data = workload::MakeClustered(30000, 2, 20, 0.1, 7);
  rstar::TreeConfig cfg;
  cfg.dim = 2;
  cfg.page_size_bytes = 1024;
  rstar::RStarTree tree(cfg);
  workload::InsertAll(data, &tree);
  common::Rng rng(8);
  for (auto _ : state) {
    const geometry::Point q = RandomPoint(2, rng);
    benchmark::DoNotOptimize(core::ExactKnn(tree, q, k));
  }
}
BENCHMARK(BM_ExactKnn)->Arg(1)->Arg(10)->Arg(100);

// --- Execution-engine primitives ------------------------------------------

exec::FlatNode CacheNode(rstar::PageId id) {
  rstar::Node node;
  node.id = id;
  node.level = 0;
  for (int i = 0; i < 40; ++i) {
    geometry::Point p{static_cast<geometry::Coord>(i), 0.5f};
    node.entries.push_back(
        rstar::Entry::ForObject(p, static_cast<rstar::ObjectId>(i)));
  }
  return exec::FlatNode::FromNode(node, 2);
}

// Pure hit path: every lookup pins a resident page.
void BM_PageCacheHit(benchmark::State& state) {
  exec::PageCacheOptions options;
  options.capacity_pages = 1024;
  options.shards = 16;
  exec::ShardedPageCache cache(options);
  for (rstar::PageId id = 0; id < 256; ++id) {
    cache.InsertPinned(id, CacheNode(id), 1);
    cache.Unpin(id);
  }
  common::Rng rng(9);
  for (auto _ : state) {
    const rstar::PageId id =
        static_cast<rstar::PageId>(rng.UniformInt(0, 255));
    benchmark::DoNotOptimize(cache.LookupPinned(id));
    cache.Unpin(id);
  }
}
BENCHMARK(BM_PageCacheHit);

// Miss + insert + eviction path: the working set is double the capacity.
void BM_PageCacheMissInsert(benchmark::State& state) {
  exec::PageCacheOptions options;
  options.capacity_pages = 128;
  options.shards = 16;
  exec::ShardedPageCache cache(options);
  common::Rng rng(10);
  for (auto _ : state) {
    const rstar::PageId id =
        static_cast<rstar::PageId>(rng.UniformInt(0, 255));
    const exec::FlatNode* node = cache.LookupPinned(id);
    if (node == nullptr) {
      node = cache.InsertPinned(id, CacheNode(id), 1);
    }
    benchmark::DoNotOptimize(node);
    cache.Unpin(id);
  }
}
BENCHMARK(BM_PageCacheMissInsert);

// Contended pin/unpin: all threads hammer the same resident pages. The
// ->Threads() counts show how far the lock sharding carries.
void BM_PageCacheContendedPin(benchmark::State& state) {
  static exec::ShardedPageCache* cache = nullptr;
  if (state.thread_index() == 0) {
    exec::PageCacheOptions options;
    options.capacity_pages = 1024;
    options.shards = 16;
    cache = new exec::ShardedPageCache(options);
    for (rstar::PageId id = 0; id < 64; ++id) {
      cache->InsertPinned(id, CacheNode(id), 1);
      cache->Unpin(id);
    }
  }
  common::Rng rng(11 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    const rstar::PageId id =
        static_cast<rstar::PageId>(rng.UniformInt(0, 63));
    benchmark::DoNotOptimize(cache->LookupPinned(id));
    cache->Unpin(id);
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
    delete cache;
    cache = nullptr;
  }
}
BENCHMARK(BM_PageCacheContendedPin)->Threads(1)->Threads(4)->Threads(8);

// Batched vs one-at-a-time file-store reads of the same 32 pages:
// FilePageStore::ReadPages merges offset-adjacent requests of one disk
// into single preads (here 32 pages on 4 disks become 4 syscalls).
void BM_StoreReads(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr size_t kPage = 4096;
  constexpr size_t kPages = 32;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sqp_bench_micro.store")
          .string();
  std::filesystem::remove_all(dir);
  auto store = storage::FilePageStore::Create(dir, 4);
  std::vector<uint8_t> zeros(kPage * kPages, 0);
  for (int d = 0; d < 4; ++d) {
    benchmark::DoNotOptimize(
        (*store)->WriteAt(d, 0, zeros.data(), zeros.size()).ok());
  }
  std::vector<uint8_t> buf(kPage * kPages);
  for (auto _ : state) {
    if (batched) {
      std::vector<storage::ReadRequest> requests;
      for (size_t i = 0; i < kPages; ++i) {
        requests.push_back({static_cast<int>(i % 4), (i / 4) * kPage,
                            buf.data() + i * kPage, kPage});
      }
      benchmark::DoNotOptimize((*store)->ReadPages(requests).ok());
    } else {
      for (size_t i = 0; i < kPages; ++i) {
        benchmark::DoNotOptimize(
            (*store)
                ->ReadAt(static_cast<int>(i % 4), (i / 4) * kPage,
                         buf.data() + i * kPage, kPage)
                .ok());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kPages));
  if (state.thread_index() == 0) {
    store->reset();
    std::filesystem::remove_all(dir);
  }
}
BENCHMARK(BM_StoreReads)->Arg(0)->Arg(1);

// Uncontended in-flight table round trip: leader Begin + Complete. The
// coalescer sits on the serial_io miss path, so its fixed cost must stay
// negligible next to a pread + decode.
void BM_ReadCoalescerLeader(benchmark::State& state) {
  exec::ReadCoalescer coalescer;
  common::Status ignored;
  for (auto _ : state) {
    const bool leader = coalescer.BeginOrWait(7, &ignored);
    benchmark::DoNotOptimize(leader);
    coalescer.Complete(7, common::Status::OK());
  }
}
BENCHMARK(BM_ReadCoalescerLeader);

}  // namespace
}  // namespace sqp

BENCHMARK_MAIN();
