// Google-benchmark microbenchmarks of the hot kernels: the three distance
// metrics, Lemma 1, R*-tree insertion/split machinery, and the exact k-NN
// search used as the WOPTSS oracle.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/exact_knn.h"
#include "core/lemma1.h"
#include "geometry/metrics.h"
#include "parallel/declustering.h"
#include "rstar/rstar_tree.h"
#include "workload/dataset.h"
#include "workload/index_builder.h"

namespace sqp {
namespace {

geometry::Rect RandomRect(int dim, common::Rng& rng) {
  geometry::Point lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    lo[i] = static_cast<geometry::Coord>(std::min(a, b));
    hi[i] = static_cast<geometry::Coord>(std::max(a, b));
  }
  return geometry::Rect(lo, hi);
}

geometry::Point RandomPoint(int dim, common::Rng& rng) {
  geometry::Point p(dim);
  for (int i = 0; i < dim; ++i) {
    p[i] = static_cast<geometry::Coord>(rng.Uniform());
  }
  return p;
}

void BM_MinDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(1);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MinDistSq(q, r));
  }
}
BENCHMARK(BM_MinDist)->Arg(2)->Arg(5)->Arg(10);

void BM_MinMaxDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(2);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MinMaxDistSq(q, r));
  }
}
BENCHMARK(BM_MinMaxDist)->Arg(2)->Arg(5)->Arg(10);

void BM_MaxDist(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  common::Rng rng(3);
  const geometry::Rect r = RandomRect(dim, rng);
  const geometry::Point q = RandomPoint(dim, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::MaxDistSq(q, r));
  }
}
BENCHMARK(BM_MaxDist)->Arg(2)->Arg(5)->Arg(10);

void BM_Proximity(benchmark::State& state) {
  common::Rng rng(4);
  const geometry::Rect a = RandomRect(2, rng);
  const geometry::Rect b = RandomRect(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::Proximity(a, b, 0.1));
  }
}
BENCHMARK(BM_Proximity);

void BM_Lemma1(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  common::Rng rng(5);
  std::vector<rstar::Entry> pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back(rstar::Entry::ForChild(
        RandomRect(2, rng), static_cast<rstar::PageId>(i),
        static_cast<uint32_t>(1 + rng.UniformInt(0, 40))));
  }
  const geometry::Point q = RandomPoint(2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ComputeLemma1(q, pool, 20));
  }
}
BENCHMARK(BM_Lemma1)->Arg(40)->Arg(160);

void BM_TreeInsert(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const workload::Dataset data = workload::MakeUniform(20000, dim, 6);
  for (auto _ : state) {
    rstar::TreeConfig cfg;
    cfg.dim = dim;
    cfg.page_size_bytes = 1024;
    rstar::RStarTree tree(cfg);
    workload::InsertAll(data, &tree);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_TreeInsert)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_ExactKnn(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  const workload::Dataset data = workload::MakeClustered(30000, 2, 20, 0.1, 7);
  rstar::TreeConfig cfg;
  cfg.dim = 2;
  cfg.page_size_bytes = 1024;
  rstar::RStarTree tree(cfg);
  workload::InsertAll(data, &tree);
  common::Rng rng(8);
  for (auto _ : state) {
    const geometry::Point q = RandomPoint(2, rng);
    benchmark::DoNotOptimize(core::ExactKnn(tree, q, k));
  }
}
BENCHMARK(BM_ExactKnn)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace sqp

BENCHMARK_MAIN();
