// Analytical model vs. simulation (§5 future work #1, implemented):
// predicted k-NN radius, weak-optimal page accesses, and M/G/1 response
// times against the measured/simulated values, across k and lambda.

#include <cmath>
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"
#include "core/exact_knn.h"
#include "core/sequential_executor.h"
#include "rstar/tree_stats.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeUniform(50000, 2, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const rstar::TreeStats stats = rstar::ComputeTreeStats(index->tree());
  // Interior queries: the analytical model ignores boundary effects.
  std::vector<geometry::Point> queries;
  {
    common::Rng rng(kQuerySeed);
    for (int i = 0; i < 100; ++i) {
      queries.push_back(geometry::Point{0.25 + 0.5 * rng.Uniform(),
                                        0.25 + 0.5 * rng.Uniform()});
    }
  }

  PrintHeader("Cost model vs simulation (uniform 50k 2-d, 10 disks)",
              "predicted k-NN radius / weak-optimal pages vs measured");
  PrintRow({"k", "r-pred", "r-meas", "pages-pred", "pages-meas"}, 12);
  for (size_t k : {1u, 10u, 50u, 200u}) {
    double r_meas = 0.0, pages_meas = 0.0;
    for (const auto& q : queries) {
      const core::ExactKnnOutput out = core::ExactKnn(index->tree(), q, k);
      r_meas += std::sqrt(out.result.KthDistSq());
      pages_meas += static_cast<double>(out.pages_accessed);
    }
    r_meas /= static_cast<double>(queries.size());
    pages_meas /= static_cast<double>(queries.size());
    const double r_pred = analysis::ExpectedKnnDistance(data.size(), 2, k);
    const double pages_pred =
        analysis::ExpectedWeakOptimalAccesses(stats, 2, r_pred);
    PrintRow({std::to_string(k), Fmt(r_pred, 4), Fmt(r_meas, 4),
              Fmt(pages_pred, 1), Fmt(pages_meas, 1)},
             12);
  }

  PrintHeader("Response time: M/G/1 prediction vs simulation",
              "algorithm: BBSS (serial) and CRSS (batched), k=20");
  PrintRow({"algo", "lambda", "rho", "pred(s)", "sim(s)"}, 10);
  const size_t k = 20;
  const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
  for (core::AlgorithmKind kind :
       {core::AlgorithmKind::kBbss, core::AlgorithmKind::kCrss}) {
    // Per-algorithm page/batch profile.
    double pages = 0.0, batches = 0.0;
    for (const auto& q : queries) {
      auto algo = core::MakeAlgorithm(kind, index->tree(), q, k, disks);
      const core::ExecutionStats s =
          core::RunToCompletion(index->tree(), algo.get());
      pages += static_cast<double>(s.pages_fetched);
      batches += static_cast<double>(s.steps);
    }
    pages /= static_cast<double>(queries.size());
    batches /= static_cast<double>(queries.size());

    for (double lambda : {2.0, 6.0, 12.0}) {
      analysis::WorkloadPoint w;
      w.lambda = lambda;
      w.pages_per_query = pages;
      w.batches_per_query = batches;
      w.num_disks = disks;
      w.query_startup_time = cfg.query_startup_time;
      w.bus_transfer_time = cfg.bus_transfer_time;
      const analysis::ResponseEstimate est =
          analysis::EstimateResponseTime(w, cfg.disk);
      const double sim_rt =
          MeanResponseTime(*index, kind, queries, k, lambda);
      PrintRow({core::AlgorithmName(kind), Fmt(lambda, 0),
                Fmt(est.disk_utilization, 2), Fmt(est.response_time),
                Fmt(sim_rt)},
               10);
    }
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_cost_model — analytical estimates vs simulation\n");
  sqp::bench::Run();
  return 0;
}
