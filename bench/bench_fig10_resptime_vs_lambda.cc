// Figure 10: mean response time (seconds) vs. query arrival rate lambda in
// a multi-user open system.
//   Left:  Long Beach set, 5 disks, k = 10, lambda = 1..10 queries/s.
//   Right: California set, 10 disks, k = 100, lambda = 2..20 queries/s.
// Series: BBSS, FPSS, CRSS, WOPTSS.
//
// Paper shape: FPSS is hypersensitive to load (uncontrolled fan-out) and
// degrades worst; CRSS stays near WOPTSS; BBSS sits in between at low k
// and falls behind CRSS as load grows. For small workloads with many disks
// FPSS can be marginally better than CRSS (right graph, small lambda).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void RunPanel(const workload::Dataset& data, int disks, size_t k,
              const std::vector<double>& lambdas) {
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  PrintHeader(
      "Figure 10: response time (s) vs. arrival rate",
      "Set: " + data.name + ", Population: " + std::to_string(data.size()) +
          ", Disks: " + std::to_string(disks) + ", NNs: " +
          std::to_string(k) + ", Dimensions: 2, queries: 100");
  PrintRow({"lambda", "BBSS", "FPSS", "CRSS", "WOPTSS"});
  for (double lambda : lambdas) {
    PrintRow({Fmt(lambda, 0),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kBbss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kFpss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kCrss,
                                   queries, k, lambda)),
              Fmt(MeanResponseTime(*index, core::AlgorithmKind::kWoptss,
                                   queries, k, lambda))});
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  using namespace sqp;
  std::printf(
      "bench_fig10_resptime_vs_lambda — multi-user response time vs load\n");
  bench::RunPanel(workload::MakeLongBeachLike(bench::kDatasetSeed),
                  /*disks=*/5, /*k=*/10,
                  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  bench::RunPanel(workload::MakeCaliforniaLike(bench::kDatasetSeed),
                  /*disks=*/10, /*k=*/100,
                  {2, 4, 6, 8, 10, 12, 14, 16, 18, 20});
  return 0;
}
