// Buffer-pool ablation: the paper charges every page to the disks (no
// host caching). How much of the BBSS/CRSS gap survives when the host
// keeps an LRU buffer? Sweep the pool size from 0 (the paper's setting)
// to tree-sized.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(50000, 2, 40, 0.05, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto queries = workload::MakeQueryPoints(
      data, 150, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 50;
  const double lambda = 8.0;
  const size_t tree_pages = index->tree().NodeCount();

  PrintHeader("Ablation: host LRU buffer pool",
              "Set: clustered 50k 2-d, Disks: 10, NNs: 50, lambda=8 q/s, "
              "tree pages: " + std::to_string(tree_pages));
  PrintRow({"buffer", "hit-rate", "BBSS(s)", "CRSS(s)"}, 12);

  for (size_t buffer : {size_t{0}, size_t{8}, size_t{32}, size_t{128},
                        tree_pages}) {
    double hit_rate = 0.0;
    double resp[2] = {0.0, 0.0};
    const core::AlgorithmKind kinds[2] = {core::AlgorithmKind::kBbss,
                                          core::AlgorithmKind::kCrss};
    for (int a = 0; a < 2; ++a) {
      const auto arrivals =
          workload::PoissonArrivalTimes(queries.size(), lambda, kArrivalSeed);
      std::vector<sim::QueryJob> jobs;
      for (size_t i = 0; i < queries.size(); ++i) {
        jobs.push_back({arrivals[i], queries[i], k});
      }
      sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
      cfg.buffer_pages = buffer;
      const sim::SimulationResult result = sim::RunSimulation(
          *index, jobs,
          [&, a](const geometry::Point& q, size_t kk) {
            return core::MakeAlgorithm(kinds[a], index->tree(), q, kk,
                                       disks);
          },
          cfg);
      resp[a] = result.MeanResponseTime();
      const size_t total = result.buffer_hits + result.buffer_misses;
      if (total > 0 && a == 1) {
        hit_rate = static_cast<double>(result.buffer_hits) /
                   static_cast<double>(total);
      }
    }
    PrintRow({buffer == tree_pages ? "all" : std::to_string(buffer),
              Fmt(hit_rate, 2), Fmt(resp[0]), Fmt(resp[1])},
             12);
  }
  std::printf(
      "\n(Even a whole-tree cache leaves the first-touch misses and CPU\n"
      " costs; the CRSS advantage shrinks but the ordering persists.)\n");
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_ablation_buffer — host caching vs the paper's model\n");
  sqp::bench::Run();
  return 0;
}
