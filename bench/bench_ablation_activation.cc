// Activation-bound ablation: CRSS's u parameter spans the design space the
// paper frames — u = 1 serializes fetches (BBSS-like interquery behavior),
// u = NumDisks is the paper's choice, u -> infinity approaches FPSS's
// uncontrolled fan-out. Response time and pages fetched per query expose
// the parallelism-vs-waste trade-off that motivates CRSS.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/crss.h"
#include "core/sequential_executor.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeGaussian(40000, 5, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto queries = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const size_t k = 20;
  const double lambda = 6.0;

  PrintHeader("Ablation: CRSS activation bound u",
              "Set: gaussian 40k, Dimensions: 5, Disks: 10, NNs: 20, "
              "lambda=6 q/s (u = 10 is the paper's NumOfDisks setting)");
  PrintRow({"u", "resp(s)", "pages/query", "max batch"}, 14);
  for (int u : {1, 2, 5, 10, 20, 1 << 20}) {
    // Response time through the simulator.
    const auto arrivals =
        workload::PoissonArrivalTimes(queries.size(), lambda, kArrivalSeed);
    std::vector<sim::QueryJob> jobs;
    for (size_t i = 0; i < queries.size(); ++i) {
      jobs.push_back({arrivals[i], queries[i], k});
    }
    const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
    const sim::SimulationResult result = sim::RunSimulation(
        *index, jobs,
        [&](const geometry::Point& q, size_t kk) {
          core::CrssOptions options;
          options.max_activation = u;
          return std::make_unique<core::Crss>(index->tree(), q, kk,
                                              options);
        },
        cfg);

    // Page counts and achieved batch width, sequentially.
    double pages = 0.0, max_batch = 0.0;
    for (const auto& q : queries) {
      core::CrssOptions options;
      options.max_activation = u;
      core::Crss algo(index->tree(), q, k, options);
      const core::ExecutionStats stats =
          core::RunToCompletion(index->tree(), &algo);
      pages += static_cast<double>(stats.pages_fetched);
      max_batch += static_cast<double>(stats.max_batch);
    }
    const double nq = static_cast<double>(queries.size());
    PrintRow({u > (1 << 19) ? "inf" : std::to_string(u),
              Fmt(result.MeanResponseTime()), Fmt(pages / nq, 1),
              Fmt(max_batch / nq, 1)},
             14);
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf(
      "bench_ablation_activation — parallelism vs waste trade-off in CRSS\n");
  sqp::bench::Run();
  return 0;
}
