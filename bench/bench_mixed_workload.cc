// Dynamic-environment bench (paper §1): similarity query response time as
// a growing stream of concurrent insertions competes for the array. The
// paper motivates its online declustering with exactly this setting but
// never measures it; this bench fills that gap.

#include <cstdio>

#include "bench/bench_util.h"

namespace sqp::bench {
namespace {

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(40000, 2, 30, 0.05, kDatasetSeed);
  const workload::Dataset extra =
      workload::MakeClustered(5000, 2, 30, 0.05, kDatasetSeed + 1);
  const auto query_points = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);
  const auto q_arrivals =
      workload::PoissonArrivalTimes(100, 6.0, kArrivalSeed);
  const size_t k = 20;

  PrintHeader("Dynamic environment: queries under concurrent insertions",
              "Set: clustered 40k 2-d, Disks: 10, NNs: 20, query lambda=6; "
              "insert rate swept (inserts during the query window)");
  PrintRow({"ins/s", "query(s)", "insert(s)", "writes/ins"}, 12);

  for (double insert_rate : {0.0, 20.0, 60.0, 120.0, 200.0}) {
    // Fresh index per point: inserts mutate it.
    rstar::TreeConfig tree_cfg;
    tree_cfg.dim = 2;
    tree_cfg.page_size_bytes = kResponseTimePageSize;
    parallel::DeclusterConfig dc;
    dc.num_disks = 10;
    dc.seed = kDatasetSeed;
    auto index = workload::BuildParallelIndex(data, tree_cfg, dc);

    std::vector<sim::QueryJob> queries;
    for (size_t i = 0; i < query_points.size(); ++i) {
      queries.push_back({q_arrivals[i], query_points[i], k});
    }
    std::vector<sim::InsertJob> inserts;
    if (insert_rate > 0) {
      const size_t n_inserts = static_cast<size_t>(
          std::min<double>(extra.size(), insert_rate * q_arrivals.back()));
      const auto arrivals = workload::PoissonArrivalTimes(
          n_inserts, insert_rate, kArrivalSeed + 1);
      for (size_t i = 0; i < n_inserts; ++i) {
        inserts.push_back({arrivals[i], extra.points[i],
                           1000000 + static_cast<rstar::ObjectId>(i)});
      }
    }

    const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
    std::vector<sim::InsertOutcome> outcomes;
    const sim::SimulationResult result = sim::RunMixedSimulation(
        index.get(), queries, inserts,
        [&](const geometry::Point& q, size_t kk) {
          return core::MakeAlgorithm(core::AlgorithmKind::kCrss,
                                     index->tree(), q, kk, 10);
        },
        cfg, &outcomes);

    double insert_rt = 0.0, writes = 0.0;
    for (const sim::InsertOutcome& o : outcomes) {
      insert_rt += o.ResponseTime();
      writes += static_cast<double>(o.pages_written);
    }
    const double n_ins = std::max<size_t>(1, outcomes.size());
    PrintRow({Fmt(insert_rate, 0), Fmt(result.MeanResponseTime()),
              Fmt(outcomes.empty() ? 0.0 : insert_rt / n_ins),
              Fmt(outcomes.empty() ? 0.0 : writes / n_ins, 1)},
             12);
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_mixed_workload — the paper's dynamic environment\n");
  sqp::bench::Run();
  return 0;
}
