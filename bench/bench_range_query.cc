// Range query processing on the parallel R*-tree (§2.2 / Kamel-Faloutsos
// multiplexed R-tree): response time of window queries of growing
// selectivity, full parallelism vs. capped activation vs. the expected
// serial cost, plus the effect of the declustering policy.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/range_search.h"
#include "core/sequential_executor.h"

namespace sqp::bench {
namespace {

using core::ParallelRangeQuery;
using core::RangeQueryOptions;
using core::RangeRegion;
using geometry::Point;
using geometry::Rect;

// Square window centered at a data-distributed point.
RangeRegion Window(const Point& center, double side) {
  const int dim = center.dim();
  Point lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = static_cast<geometry::Coord>(
        std::max(0.0, static_cast<double>(center[i]) - side / 2));
    hi[i] = static_cast<geometry::Coord>(
        std::min(1.0, static_cast<double>(center[i]) + side / 2));
  }
  return RangeRegion::Box(Rect(lo, hi));
}

void Run() {
  const workload::Dataset data =
      workload::MakeClustered(50000, 2, 40, 0.05, kDatasetSeed);
  const int disks = 10;
  auto index = BuildIndex(data, disks, kResponseTimePageSize);
  const auto centers = workload::MakeQueryPoints(
      data, 100, workload::QueryDistribution::kDataDistributed, kQuerySeed);

  PrintHeader("Range queries on the parallel R*-tree",
              "Set: clustered 50k 2-d, Disks: 10, lambda=5 q/s, window side "
              "swept; activation: full vs capped(u=10)");
  PrintRow({"side", "matches", "pages", "resp-full", "resp-cap"}, 12);

  for (double side : {0.01, 0.02, 0.05, 0.1, 0.2}) {
    // Average selectivity and page count (sequential executor).
    double matches = 0.0, pages = 0.0;
    for (const Point& c : centers) {
      ParallelRangeQuery q(index->tree(), Window(c, side));
      const core::ExecutionStats stats =
          core::RunToCompletion(index->tree(), &q);
      matches += static_cast<double>(q.ResultCount());
      pages += static_cast<double>(stats.pages_fetched);
    }
    matches /= static_cast<double>(centers.size());
    pages /= static_cast<double>(centers.size());

    // Response time through the simulator, full vs capped activation.
    auto respond = [&](int cap) {
      const auto arrivals =
          workload::PoissonArrivalTimes(centers.size(), 5.0, kArrivalSeed);
      std::vector<sim::QueryJob> jobs;
      for (size_t i = 0; i < centers.size(); ++i) {
        jobs.push_back({arrivals[i], centers[i], 1});
      }
      const sim::SimConfig cfg = MakeSimConfig(kResponseTimePageSize);
      return sim::RunSimulation(
                 *index, jobs,
                 [&](const Point& c, size_t) {
                   RangeQueryOptions options;
                   options.max_activation = cap;
                   return std::make_unique<ParallelRangeQuery>(
                       index->tree(), Window(c, side), options);
                 },
                 cfg)
          .MeanResponseTime();
    };
    PrintRow({Fmt(side, 2), Fmt(matches, 1), Fmt(pages, 1),
              Fmt(respond(0)), Fmt(respond(10))},
             12);
  }
}

}  // namespace
}  // namespace sqp::bench

int main() {
  std::printf("bench_range_query — window queries over the disk array\n");
  sqp::bench::Run();
  return 0;
}
